// Serve front-end: wire-schema envelopes (key order, typed error codes,
// framing), request validation, and the identity contract — every
// payload served over the socket is byte-identical to the equivalent
// direct library call, for any worker count, coalesced or not.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "faultsim/campaign.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "workloads/spec.h"

namespace eccm0::service {
namespace {

// ---- wire schema ----------------------------------------------------

TEST(Wire, RequestEnvelopeKeyOrderIsFixed) {
  telemetry::Json params = telemetry::Json::object();
  params.set("curve", telemetry::Json::str("sect233k1"));
  const telemetry::Json req = wire::make_request(7, "kp", std::move(params));
  EXPECT_EQ(req.dump(),
            "{\"schema\":\"eccm0.req.v1\",\"id\":7,\"op\":\"kp\","
            "\"params\":{\"curve\":\"sect233k1\"}}");
}

TEST(Wire, ResponseEnvelopeKeyOrderIsFixed) {
  telemetry::Json payload = telemetry::Json::object();
  payload.set("pong", telemetry::Json::boolean(true));
  const telemetry::Json ok = wire::make_response(3, "ping", std::move(payload));
  EXPECT_EQ(ok.dump(),
            "{\"schema\":\"eccm0.resp.v1\",\"id\":3,\"op\":\"ping\","
            "\"ok\":true,\"payload\":{\"pong\":true}}");
  const telemetry::Json err =
      wire::make_error(4, "kp", wire::ErrorCode::kBusy, "queue full");
  EXPECT_EQ(err.dump(),
            "{\"schema\":\"eccm0.resp.v1\",\"id\":4,\"op\":\"kp\","
            "\"ok\":false,\"error\":{\"code\":\"busy\","
            "\"message\":\"queue full\"}}");
}

TEST(Wire, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBadFrame), "bad_frame");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBadJson), "bad_json");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBadSchema),
               "bad_schema");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBadRequest),
               "bad_request");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kUnknownOp),
               "unknown_op");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBadParam), "bad_param");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kBusy), "busy");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kShuttingDown),
               "shutting_down");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kInternal), "internal");
}

TEST(Wire, ParseRequestValidates) {
  auto parse = [](const std::string& text) {
    return wire::parse_request(telemetry::Json::parse(text));
  };
  const wire::RequestParse ok = parse(
      "{\"schema\":\"eccm0.req.v1\",\"id\":9,\"op\":\"kp\","
      "\"params\":{\"reps\":2}}");
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.req.id, 9u);
  EXPECT_EQ(ok.req.op, "kp");
  EXPECT_EQ(ok.req.params.get("reps")->as_u64(), 2u);

  EXPECT_EQ(parse("{\"id\":1,\"op\":\"kp\"}").code,
            wire::ErrorCode::kBadSchema);
  EXPECT_EQ(parse("{\"schema\":\"eccm0.req.v9\",\"id\":1,\"op\":\"kp\"}").code,
            wire::ErrorCode::kBadSchema);
  // The id still correlates even when the schema is wrong.
  EXPECT_EQ(parse("{\"schema\":\"eccm0.req.v9\",\"id\":42,\"op\":\"x\"}")
                .req.id,
            42u);
  EXPECT_EQ(parse("{\"schema\":\"eccm0.req.v1\",\"op\":\"kp\"}").code,
            wire::ErrorCode::kBadRequest);
  EXPECT_EQ(parse("{\"schema\":\"eccm0.req.v1\",\"id\":1}").code,
            wire::ErrorCode::kBadRequest);
  EXPECT_EQ(parse("{\"schema\":\"eccm0.req.v1\",\"id\":1,\"op\":\"kp\","
                  "\"params\":3}")
                .code,
            wire::ErrorCode::kBadRequest);
}

TEST(Wire, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string sent = "{\"hello\":\"frame\"}";
  EXPECT_TRUE(wire::write_frame(fds[0], sent));
  std::string got;
  EXPECT_TRUE(wire::read_frame(fds[1], got));
  EXPECT_EQ(got, sent);

  // A zero-length prefix is a bad frame, not an EOF.
  const char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds[0], zero, 4, 0), 4);
  bool bad = false;
  EXPECT_FALSE(wire::read_frame(fds[1], got, &bad));
  EXPECT_TRUE(bad);

  ::close(fds[0]);
  bad = true;
  EXPECT_FALSE(wire::read_frame(fds[1], got, &bad)) << "EOF reads false";
  EXPECT_FALSE(bad) << "EOF is not a bad frame";
  ::close(fds[1]);
}

// ---- server ----------------------------------------------------------

ServerConfig test_config(unsigned workers, std::size_t queue_depth = 64) {
  ServerConfig cfg;
  cfg.workers = workers;
  cfg.queue_depth = queue_depth;
  return cfg;
}

TEST(Server, RejectsZeroQueueDepth) {
  EXPECT_THROW(Server(test_config(1, 0)), std::invalid_argument);
}

TEST(Server, ServedWorkloadPayloadsAreBitIdenticalToDirectCalls) {
  Server server(test_config(2));
  server.start();
  Client client;
  client.connect_to(server.port());

  for (const char* op : {"kp", "ecdh", "ecdsa"}) {
    for (const char* curve : {"sect233k1", "secp192r1"}) {
      telemetry::Json params = telemetry::Json::object();
      params.set("curve", telemetry::Json::str(curve));
      const telemetry::Json resp = client.call(op, std::move(params));
      ASSERT_TRUE(resp.get("ok")->as_bool()) << op << " " << curve;

      const workloads::WorkloadSpec spec = workloads::make_workload(op, curve);
      const telemetry::Json direct = workload_payload(
          spec, 1, workloads::replay(spec, armvm::Cpu::DecodeMode::kPredecode),
          armvm::Cpu::DecodeMode::kPredecode, {});
      EXPECT_EQ(resp.get("payload")->dump(), direct.dump())
          << op << " " << curve;
    }
  }
  server.stop();
}

TEST(Server, ServedPayloadIsWorkerCountInvariant) {
  // The same request must produce byte-identical payloads from a
  // 1-worker and a 4-worker server.
  std::vector<std::string> dumps;
  for (unsigned workers : {1u, 4u}) {
    Server server(test_config(workers));
    server.start();
    Client client;
    client.connect_to(server.port());
    telemetry::Json params = telemetry::Json::object();
    params.set("curve", telemetry::Json::str("secp224r1"));
    params.set("reps", telemetry::Json::number(std::uint64_t{2}));
    const telemetry::Json resp = client.call("kp", std::move(params));
    ASSERT_TRUE(resp.get("ok")->as_bool());
    dumps.push_back(resp.get("payload")->dump());
    server.stop();
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(Server, ServedCampaignPayloadIsBitIdenticalToDirectRun) {
  Server server(test_config(2));
  server.start();
  Client client;
  client.connect_to(server.port());

  telemetry::Json params = telemetry::Json::object();
  params.set("curve", telemetry::Json::str("sect233k1"));
  params.set("runs", telemetry::Json::number(std::uint64_t{3}));
  params.set("seed", telemetry::Json::number(std::uint64_t{0xFEED}));
  const telemetry::Json resp = client.call("campaign", std::move(params));
  ASSERT_TRUE(resp.get("ok")->as_bool());

  faultsim::CampaignConfig cfg;
  cfg.curve = "sect233k1";
  cfg.runs_per_model = 3;
  cfg.seed = 0xFEED;
  cfg.threads = 1;
  cfg.engine = armvm::Cpu::DecodeMode::kPredecode;
  const telemetry::Json direct =
      campaign_payload(faultsim::run_kp_campaign(cfg));
  EXPECT_EQ(resp.get("payload")->dump(), direct.dump());
  server.stop();
}

TEST(Server, TypedErrorsComeBackOnTheSameConnection) {
  Server server(test_config(1));
  server.start();
  Client client;
  client.connect_to(server.port());

  // Malformed JSON body -> bad_json, connection stays usable.
  telemetry::Json resp = client.call_raw("{not json");
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_json");

  // Unknown schema version -> bad_schema naming the supported one.
  resp = client.call_raw(
      "{\"schema\":\"eccm0.req.v9\",\"id\":5,\"op\":\"kp\"}");
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_schema");
  EXPECT_EQ(resp.get("id")->as_u64(), 5u);
  EXPECT_NE(resp.get("error")->get("message")->as_string().find(
                "eccm0.req.v1"),
            std::string::npos);

  // Unknown op -> unknown_op.
  resp = client.call("launch-missiles", telemetry::Json::object());
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "unknown_op");

  // Bad curve -> bad_param (thrown by workloads::curve_from_name).
  telemetry::Json params = telemetry::Json::object();
  params.set("curve", telemetry::Json::str("secp999z9"));
  resp = client.call("kp", std::move(params));
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_param");

  // A negative count must be a typed rejection, not a strtoull wrap to
  // 2^64-1 that occupies a worker forever and wedges shutdown.
  resp = client.call_raw(
      "{\"schema\":\"eccm0.req.v1\",\"id\":6,\"op\":\"campaign\","
      "\"params\":{\"runs\":-1}}");
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_param");

  // Campaign-style run counts are bounded like reps/calls/ms.
  resp = client.call_raw(
      "{\"schema\":\"eccm0.req.v1\",\"id\":7,\"op\":\"sca\","
      "\"params\":{\"runs\":100000}}");
  EXPECT_FALSE(resp.get("ok")->as_bool());
  EXPECT_EQ(resp.get("error")->get("code")->as_string(), "bad_param");

  // And the connection still serves good requests after all of that.
  resp = client.call("ping", telemetry::Json::object());
  EXPECT_TRUE(resp.get("ok")->as_bool());
  EXPECT_TRUE(resp.get("payload")->get("pong")->as_bool());
  server.stop();
}

TEST(Server, FullQueueYieldsTypedBusyResponse) {
  // One worker, the smallest queue (capacity 2): park the worker on a
  // sleep job, fill both slots with kp requests, and the next request
  // must bounce with `busy` — the deterministic backpressure path. The
  // session thread handles frames in order, so the bounce happens
  // before the worker wakes (400 ms vs. microseconds).
  Server server(test_config(1, 1));
  server.start();
  ASSERT_EQ(server.config().queue_depth, 1u);
  Client client;
  client.connect_to(server.port());

  telemetry::Json sleep_params = telemetry::Json::object();
  sleep_params.set("ms", telemetry::Json::number(std::uint64_t{400}));
  const telemetry::Json sleep_req =
      wire::make_request(1, "sleep", std::move(sleep_params));
  ASSERT_TRUE(wire::write_frame(client.fd(), sleep_req.dump()));
  // Let the worker claim the sleep job so both queue slots are free.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  telemetry::Json kp_params = telemetry::Json::object();
  kp_params.set("curve", telemetry::Json::str("sect233k1"));
  for (std::uint64_t id = 2; id <= 4; ++id) {
    ASSERT_TRUE(wire::write_frame(
        client.fd(), wire::make_request(id, "kp", kp_params).dump()));
  }

  std::map<std::uint64_t, telemetry::Json> by_id;
  for (int i = 0; i < 4; ++i) {
    std::string body;
    ASSERT_TRUE(wire::read_frame(client.fd(), body));
    telemetry::Json resp = telemetry::Json::parse(body);
    by_id.emplace(resp.get("id")->as_u64(), std::move(resp));
  }
  ASSERT_EQ(by_id.size(), 4u);
  EXPECT_TRUE(by_id.at(1).get("ok")->as_bool());
  EXPECT_TRUE(by_id.at(2).get("ok")->as_bool());
  EXPECT_TRUE(by_id.at(3).get("ok")->as_bool());
  EXPECT_FALSE(by_id.at(4).get("ok")->as_bool());
  EXPECT_EQ(by_id.at(4).get("error")->get("code")->as_string(), "busy");
  EXPECT_GE(server.metrics().counter_value("serve.busy"), 1u);
  server.stop();
}

TEST(Server, CoalescedBatchStillServesIdenticalPayloads) {
  // Saturate a 1-worker server with identical kP requests pipelined on
  // one connection: the drain loop dedups them into one replay, and
  // every response's payload must still byte-match the direct call.
  Server server(test_config(1, 64));
  server.start();
  Client client;
  client.connect_to(server.port());

  telemetry::Json params = telemetry::Json::object();
  params.set("curve", telemetry::Json::str("sect233k1"));
  constexpr std::uint64_t kRequests = 8;
  for (std::uint64_t id = 1; id <= kRequests; ++id) {
    ASSERT_TRUE(wire::write_frame(
        client.fd(), wire::make_request(id, "kp", params).dump()));
  }
  const workloads::WorkloadSpec spec =
      workloads::make_workload("kp", "sect233k1");
  const std::string direct =
      workload_payload(spec, 1,
                       workloads::replay(spec,
                                         armvm::Cpu::DecodeMode::kPredecode),
                       armvm::Cpu::DecodeMode::kPredecode, {})
          .dump();
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    std::string body;
    ASSERT_TRUE(wire::read_frame(client.fd(), body));
    const telemetry::Json resp = telemetry::Json::parse(body);
    ASSERT_TRUE(resp.get("ok")->as_bool());
    EXPECT_EQ(resp.get("payload")->dump(), direct);
  }
  server.stop();
}

TEST(Server, ShutdownOpRequestsStop) {
  Server server(test_config(1));
  server.start();
  Client client;
  client.connect_to(server.port());
  EXPECT_FALSE(server.stop_requested());
  const telemetry::Json resp =
      client.call("shutdown", telemetry::Json::object());
  EXPECT_TRUE(resp.get("ok")->as_bool());
  EXPECT_TRUE(server.stop_requested());
  server.wait();  // returns promptly: stop was requested over the wire
}

TEST(Server, StatsEndpointReportsServeMetrics) {
  Server server(test_config(2));
  server.start();
  Client client;
  client.connect_to(server.port());
  telemetry::Json params = telemetry::Json::object();
  params.set("curve", telemetry::Json::str("sect233k1"));
  ASSERT_TRUE(client.call("kp", std::move(params)).get("ok")->as_bool());

  const telemetry::Json resp = client.call("stats", telemetry::Json::object());
  ASSERT_TRUE(resp.get("ok")->as_bool());
  const telemetry::Json* payload = resp.get("payload");
  EXPECT_EQ(payload->get("workers")->as_u64(), 2u);
  EXPECT_EQ(payload->get("queue_depth")->as_u64(), 64u);
  const telemetry::Json* metrics = payload->get("metrics");
  ASSERT_NE(metrics, nullptr);
  const telemetry::Json* counters = metrics->get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get("serve.requests")->as_u64(), 1u);
  server.stop();
}

}  // namespace
}  // namespace eccm0::service
