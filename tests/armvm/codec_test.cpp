// Encoder/decoder round-trip and known-encoding checks against the ARMv6-M
// reference encodings.
#include "armvm/codec.h"

#include <gtest/gtest.h>

namespace eccm0::armvm {
namespace {

Instr roundtrip(const Instr& in) {
  const auto hw = encode(in);
  const Decoded d = decode(hw, 0);
  EXPECT_EQ(d.halfwords, hw.size());
  return d.ins;
}

TEST(Codec, KnownEncodings) {
  // Reference values from the ARMv6-M ARM (hand-assembled).
  Instr i;
  i.op = Op::kMovImm; i.rd = 0; i.imm = 42;
  EXPECT_EQ(encode(i)[0], 0x202A);  // movs r0, #42
  i = {}; i.op = Op::kLslImm; i.rd = 1; i.rm = 2; i.imm = 4;
  EXPECT_EQ(encode(i)[0], 0x0111);  // lsls r1, r2, #4
  i = {}; i.op = Op::kAddReg; i.rd = 0; i.rn = 1; i.rm = 2;
  EXPECT_EQ(encode(i)[0], 0x1888);  // adds r0, r1, r2
  i = {}; i.op = Op::kEor; i.rd = 3; i.rm = 4;
  EXPECT_EQ(encode(i)[0], 0x4063);  // eors r3, r4
  i = {}; i.op = Op::kMul; i.rd = 0; i.rm = 7;
  EXPECT_EQ(encode(i)[0], 0x4378);  // muls r0, r7
  i = {}; i.op = Op::kLdrImm; i.rd = 0; i.rn = 1; i.imm = 4;
  EXPECT_EQ(encode(i)[0], 0x6848);  // ldr r0, [r1, #4]
  i = {}; i.op = Op::kStrImm; i.rd = 2; i.rn = 3; i.imm = 0;
  EXPECT_EQ(encode(i)[0], 0x601A);  // str r2, [r3]
  i = {}; i.op = Op::kPush; i.reg_list = 0x1F0;  // push {r4-r7, lr}
  EXPECT_EQ(encode(i)[0], 0xB5F0);
  i = {}; i.op = Op::kPop; i.reg_list = 0x1F0;  // pop {r4-r7, pc}
  EXPECT_EQ(encode(i)[0], 0xBDF0);
  i = {}; i.op = Op::kBx; i.rm = 14;
  EXPECT_EQ(encode(i)[0], 0x4770);  // bx lr
  i = {}; i.op = Op::kNop;
  EXPECT_EQ(encode(i)[0], 0xBF00);
  i = {}; i.op = Op::kB; i.imm = -4;
  EXPECT_EQ(encode(i)[0], 0xE7FE);  // b . (self-loop)
}

TEST(Codec, MovHiEncoding) {
  Instr i;
  i.op = Op::kMovHi; i.rd = 8; i.rm = 1;
  EXPECT_EQ(encode(i)[0], 0x4688);  // mov r8, r1
  i.rd = 1; i.rm = 9;
  EXPECT_EQ(encode(i)[0], 0x4649);  // mov r1, r9
}

TEST(Codec, RoundTripAllDataProcessing) {
  for (Op op : {Op::kAnd, Op::kEor, Op::kLslReg, Op::kLsrReg, Op::kAsrReg,
                Op::kAdc, Op::kSbc, Op::kRorReg, Op::kTst, Op::kRsb,
                Op::kCmpReg, Op::kCmn, Op::kOrr, Op::kMul, Op::kBic,
                Op::kMvn}) {
    for (std::uint8_t rd = 0; rd < 8; ++rd) {
      Instr i;
      i.op = op;
      i.rd = rd;
      i.rm = static_cast<std::uint8_t>(7 - rd);
      EXPECT_EQ(roundtrip(i), i) << op_name(op);
    }
  }
}

TEST(Codec, RoundTripImmediates) {
  for (Op op : {Op::kMovImm, Op::kCmpImm, Op::kAddImm8, Op::kSubImm8}) {
    for (std::int32_t imm : {0, 1, 127, 255}) {
      Instr i;
      i.op = op;
      i.rd = 5;
      i.imm = imm;
      EXPECT_EQ(roundtrip(i), i);
    }
  }
  for (Op op : {Op::kLslImm, Op::kLsrImm, Op::kAsrImm}) {
    for (std::int32_t imm : {0, 1, 31}) {
      Instr i;
      i.op = op;
      i.rd = 1;
      i.rm = 2;
      i.imm = imm;
      EXPECT_EQ(roundtrip(i), i);
    }
  }
}

TEST(Codec, RoundTripMemory) {
  for (Op op : {Op::kLdrImm, Op::kStrImm}) {
    for (std::int32_t imm : {0, 4, 124}) {
      Instr i;
      i.op = op;
      i.rd = 3;
      i.rn = 4;
      i.imm = imm;
      EXPECT_EQ(roundtrip(i), i);
    }
  }
  for (Op op : {Op::kLdrbImm, Op::kStrbImm}) {
    Instr i;
    i.op = op;
    i.rd = 0;
    i.rn = 7;
    i.imm = 31;
    EXPECT_EQ(roundtrip(i), i);
  }
  for (Op op : {Op::kLdrhImm, Op::kStrhImm}) {
    Instr i;
    i.op = op;
    i.rd = 2;
    i.rn = 3;
    i.imm = 62;
    EXPECT_EQ(roundtrip(i), i);
  }
  for (Op op : {Op::kLdrReg, Op::kStrReg, Op::kLdrbReg, Op::kStrbReg,
                Op::kLdrhReg, Op::kStrhReg}) {
    Instr i;
    i.op = op;
    i.rd = 1;
    i.rn = 2;
    i.rm = 3;
    EXPECT_EQ(roundtrip(i), i);
  }
  for (Op op : {Op::kLdrSp, Op::kStrSp}) {
    Instr i;
    i.op = op;
    i.rd = 6;
    i.imm = 1020;
    EXPECT_EQ(roundtrip(i), i);
  }
}

TEST(Codec, RoundTripBranches) {
  for (std::int32_t imm : {-256, -2, 0, 2, 254}) {
    Instr i;
    i.op = Op::kBCond;
    i.cond = Cond::kNe;
    i.imm = imm;
    EXPECT_EQ(roundtrip(i), i);
  }
  for (std::int32_t imm : {-2048, 0, 2046}) {
    Instr i;
    i.op = Op::kB;
    i.imm = imm;
    EXPECT_EQ(roundtrip(i), i);
  }
  for (std::int32_t imm : {-4096, -2, 0, 4096, 1 << 21}) {
    Instr i;
    i.op = Op::kBl;
    i.imm = imm;
    const auto hw = encode(i);
    ASSERT_EQ(hw.size(), 2u);
    EXPECT_EQ(roundtrip(i), i);
  }
}

TEST(Codec, RoundTripLdmStmPushPop) {
  Instr i;
  i.op = Op::kLdm;
  i.rn = 2;
  i.reg_list = 0xF1;
  EXPECT_EQ(roundtrip(i), i);
  i.op = Op::kStm;
  EXPECT_EQ(roundtrip(i), i);
  i = {};
  i.op = Op::kPush;
  i.reg_list = 0x110;
  EXPECT_EQ(roundtrip(i), i);
  i.op = Op::kPop;
  EXPECT_EQ(roundtrip(i), i);
}

TEST(Codec, RejectsOutOfRange) {
  Instr i;
  i.op = Op::kMovImm;
  i.rd = 0;
  i.imm = 256;
  EXPECT_THROW(encode(i), std::invalid_argument);
  i = {};
  i.op = Op::kAddReg;
  i.rd = 8;  // hi register in lo-only form
  EXPECT_THROW(encode(i), std::invalid_argument);
  i = {};
  i.op = Op::kLdrImm;
  i.rd = 0;
  i.rn = 1;
  i.imm = 3;  // not word aligned
  EXPECT_THROW(encode(i), std::invalid_argument);
  i = {};
  i.op = Op::kBCond;
  i.imm = 300;
  EXPECT_THROW(encode(i), std::invalid_argument);
}

TEST(Codec, DecodeRejectsUnsupported) {
  EXPECT_THROW(decode({0xDE00}, 0), std::invalid_argument);  // UDF
  EXPECT_THROW(decode({0xF800}, 0), std::invalid_argument);  // stray BL lo
  EXPECT_THROW(decode({0xC000}, 0), std::invalid_argument);  // empty STM list
  EXPECT_THROW(decode({0xBF10}, 0), std::invalid_argument);  // WFE hint
}

TEST(Codec, SignedLoadsRoundTrip) {
  for (Op op : {Op::kLdrsbReg, Op::kLdrshReg}) {
    Instr i;
    i.op = op;
    i.rd = 1;
    i.rn = 2;
    i.rm = 3;
    const auto hw = encode(i);
    EXPECT_EQ(decode(hw, 0).ins, i);
  }
  Instr i;
  i.op = Op::kLdrsbReg;
  i.rd = 0;
  i.rn = 1;
  i.rm = 2;
  EXPECT_EQ(encode(i)[0], 0x5688);  // ldrsb r0, [r1, r2]
}

TEST(Codec, ExhaustiveDecodeEncodeFixpoint) {
  // For every 16-bit pattern: if it decodes, re-encoding the decoded form
  // must reproduce the original bytes (the decoder is a partial inverse
  // of the encoder, with no silent canonicalisation).
  unsigned decodable = 0;
  for (unsigned h = 0; h <= 0xFFFF; ++h) {
    std::vector<std::uint16_t> code{static_cast<std::uint16_t>(h), 0xF801};
    Decoded d;
    try {
      d = decode(code, 0);
    } catch (const std::invalid_argument&) {
      continue;
    }
    ++decodable;
    const auto re = encode(d.ins);
    ASSERT_EQ(re.size(), d.halfwords) << std::hex << h;
    EXPECT_EQ(re[0], static_cast<std::uint16_t>(h)) << std::hex << h;
    if (d.halfwords == 2) {
      EXPECT_EQ(re[1], 0xF801) << std::hex << h;
    }
  }
  // The vast majority of the space decodes (Thumb-1 is dense).
  EXPECT_GT(decodable, 55000u);
}

TEST(Codec, DisassembleSmoke) {
  Instr i;
  i.op = Op::kEor;
  i.rd = 3;
  i.rm = 4;
  EXPECT_EQ(disassemble(i), "eors r3, r4");
  i = {};
  i.op = Op::kLdrImm;
  i.rd = 0;
  i.rn = 1;
  i.imm = 4;
  EXPECT_EQ(disassemble(i), "ldr r0, [r1, #4]");
  i = {};
  i.op = Op::kPush;
  i.reg_list = 0x1F0;
  EXPECT_EQ(disassemble(i), "push {r4, r5, r6, r7, lr}");
}

}  // namespace
}  // namespace eccm0::armvm
