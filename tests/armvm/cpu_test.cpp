// Semantic tests of the Thumb interpreter: arithmetic flags, memory,
// control flow, the M0+ cycle model and the call ABI.
#include "armvm/cpu.h"

#include <gtest/gtest.h>

#include "armvm/asm.h"

namespace eccm0::armvm {
namespace {

struct Machine {
  explicit Machine(const std::string& src, std::size_t ram = 1 << 16)
      : program(assemble(src)), mem(ram), cpu(program, mem) {}
  ProgramRef program;
  Memory mem;
  Cpu cpu;
};

TEST(Cpu, ReturnsFromCall) {
  Machine m(R"(
fn: movs r0, #7
    bx lr
)");
  const RunStats s = m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 7u);
  EXPECT_EQ(s.instructions, 2u);
  EXPECT_EQ(s.cycles, 1u + 2u);  // movs 1 + bx 2
}

TEST(Cpu, AddSubFlags) {
  Machine m(R"(
fn: movs r0, #0
    subs r0, #1       ; 0 - 1 = 0xFFFFFFFF, N=1 C=0 (borrow)
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 0xFFFFFFFFu);
  EXPECT_TRUE(m.cpu.flag_n());
  EXPECT_FALSE(m.cpu.flag_c());
  EXPECT_FALSE(m.cpu.flag_z());
}

TEST(Cpu, AdcChainAdds64Bit) {
  // 64-bit add: (r0,r1) + (r2,r3) -> (r0,r1).
  Machine m(R"(
fn: adds r0, r0, r2
    adcs r1, r3
    bx lr
)");
  m.cpu.set_reg(0, 0xFFFFFFFF);
  m.cpu.set_reg(1, 0x1);
  m.cpu.set_reg(2, 0x2);
  m.cpu.set_reg(3, 0x10);
  m.cpu.set_reg(15, m.program->entry("fn"));
  m.cpu.set_reg(14, kReturnSentinel);
  while (m.cpu.step()) {
  }
  EXPECT_EQ(m.cpu.reg(0), 0x1u);         // 0xFFFFFFFF + 2 = 0x1_00000001
  EXPECT_EQ(m.cpu.reg(1), 0x12u);        // 1 + 0x10 + carry
}

TEST(Cpu, OverflowFlag) {
  Machine m(R"(
fn: movs r0, #1
    lsls r0, r0, #31   ; r0 = 0x80000000
    subs r0, #1        ; 0x80000000 - 1 overflows (min-int - 1)
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_TRUE(m.cpu.flag_v());
  EXPECT_EQ(m.cpu.reg(0), 0x7FFFFFFFu);
}

TEST(Cpu, ShiftCarrySemantics) {
  Machine m(R"(
fn: movs r0, #3
    lsrs r0, r0, #1    ; r0 = 1, C = 1
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 1u);
  EXPECT_TRUE(m.cpu.flag_c());
}

TEST(Cpu, MulAndLogic) {
  Machine m(R"(
fn: muls r0, r1
    eors r0, r2
    bx lr
)");
  const RunStats s = m.cpu.call(m.program->entry("fn"), {6, 7, 0xFF});
  EXPECT_EQ(m.cpu.reg(0), (6u * 7u) ^ 0xFFu);
  EXPECT_EQ(s.cycles, 1u + 1u + 2u);
}

TEST(Cpu, MemoryLoadStore) {
  Machine m(R"(
fn: str r1, [r0]
    ldr r2, [r0, #0]
    adds r2, #1
    str r2, [r0, #4]
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {kRamBase + 0x100, 41});
  EXPECT_EQ(m.mem.load32(kRamBase + 0x100), 41u);
  EXPECT_EQ(m.mem.load32(kRamBase + 0x104), 42u);
}

TEST(Cpu, ByteAndHalfAccess) {
  Machine m(R"(
fn: strb r1, [r0]
    strb r1, [r0, #1]
    ldrh r2, [r0]
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {kRamBase + 0x40, 0xAB});
  EXPECT_EQ(m.cpu.reg(2), 0xABABu);
}

TEST(Cpu, SignedLoads) {
  Machine m(R"(
fn: movs r2, #0
    ldrsb r1, [r0, r2]
    movs r3, #2
    ldrsh r4, [r0, r3]
    bx lr
)");
  m.mem.store8(kRamBase + 0, 0x80);        // -128 as signed byte
  m.mem.store16(kRamBase + 2, 0xFFFE);     // -2 as signed halfword
  m.cpu.call(m.program->entry("fn"), {kRamBase});
  EXPECT_EQ(m.cpu.reg(1), static_cast<std::uint32_t>(-128));
  EXPECT_EQ(m.cpu.reg(4), static_cast<std::uint32_t>(-2));
}

TEST(Cpu, LoopWithBranches) {
  // sum 1..10
  Machine m(R"(
fn:   movs r1, #0
      movs r2, #10
loop: adds r1, r1, r2
      subs r2, #1
      bne loop
      movs r0, r1
      bx lr
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 55u);
}

TEST(Cpu, BranchCycleCost) {
  // Taken branch = 2 cycles, not taken = 1.
  Machine m(R"(
fn:  cmp r0, #0
     beq skip
     movs r1, #1
skip: bx lr
)");
  const RunStats taken = m.cpu.call(m.program->entry("fn"), {0});
  // cmp 1 + beq taken 2 + bx 2 = 5
  EXPECT_EQ(taken.cycles, 5u);
  const RunStats not_taken = m.cpu.call(m.program->entry("fn"), {1});
  // cmp 1 + beq not-taken 1 + movs 1 + bx 2 = 5
  EXPECT_EQ(not_taken.cycles, 5u);
  EXPECT_EQ(not_taken.instructions, 4u);
}

TEST(Cpu, LoadStoreCycleCost) {
  Machine m(R"(
fn: ldr r1, [r0]
    str r1, [r0, #4]
    bx lr
)");
  const RunStats s = m.cpu.call(m.program->entry("fn"), {kRamBase});
  EXPECT_EQ(s.cycles, 2u + 2u + 2u);
}

TEST(Cpu, LdmStmCostAndWriteback) {
  Machine m(R"(
fn: ldmia r0!, {r1, r2, r3}
    stmia r4!, {r1, r2, r3}
    bx lr
)");
  m.mem.write_words(kRamBase, std::array<std::uint32_t, 3>{10, 20, 30});
  m.cpu.set_reg(4, kRamBase + 0x100);
  const RunStats s = m.cpu.call(m.program->entry("fn"), {kRamBase});
  EXPECT_EQ(m.cpu.reg(0), kRamBase + 12);
  EXPECT_EQ(m.cpu.reg(4), kRamBase + 0x100 + 12);
  EXPECT_EQ(m.mem.load32(kRamBase + 0x104), 20u);
  EXPECT_EQ(s.cycles, (1u + 3u) * 2 + 2u);  // two 1+N transfers + bx
}

TEST(Cpu, PushPopRoundTrip) {
  Machine m(R"(
fn: push {r4, r5, lr}
    movs r4, #1
    movs r5, #2
    pop {r4, r5, pc}
)");
  m.cpu.set_reg(4, 0xAAAA);
  m.cpu.set_reg(5, 0xBBBB);
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(4), 0xAAAAu);  // restored
  EXPECT_EQ(m.cpu.reg(5), 0xBBBBu);
}

TEST(Cpu, BlAndNestedCall) {
  Machine m(R"(
main: push {lr}
      bl helper
      adds r0, #1
      pop {pc}
helper: movs r0, #10
      bx lr
)");
  m.cpu.call(m.program->entry("main"), {});
  EXPECT_EQ(m.cpu.reg(0), 11u);
}

TEST(Cpu, HiRegisterMovAdd) {
  Machine m(R"(
fn: mov r8, r0
    mov r1, r8
    add r1, r8
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {21});
  EXPECT_EQ(m.cpu.reg(1), 42u);
}

TEST(Cpu, LiteralPoolLoad) {
  Machine m(R"(
fn: ldr r0, =0xDEADBEEF
    ldr r1, =0x12345678
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 0xDEADBEEFu);
  EXPECT_EQ(m.cpu.reg(1), 0x12345678u);
}

TEST(Cpu, EnergyHistogramAccumulates) {
  Machine m(R"(
fn: ldr r1, [r0]
    eors r1, r1
    lsls r1, r1, #1
    adds r1, #1
    muls r1, r1
    str r1, [r0]
    bx lr
)");
  const RunStats s = m.cpu.call(m.program->entry("fn"), {kRamBase});
  using costmodel::InstrClass;
  auto cy = [&](InstrClass c) {
    return s.histogram.cycles[static_cast<int>(c)];
  };
  EXPECT_EQ(cy(InstrClass::kLdr), 2u);
  EXPECT_EQ(cy(InstrClass::kStr), 2u);
  EXPECT_EQ(cy(InstrClass::kEor), 1u);
  EXPECT_EQ(cy(InstrClass::kLsl), 1u);
  EXPECT_EQ(cy(InstrClass::kAdd), 1u);
  EXPECT_EQ(cy(InstrClass::kMul), 1u);
  EXPECT_EQ(cy(InstrClass::kBranch), 2u);
  const auto e = s.energy();
  EXPECT_GT(e.energy_pj, 0.0);
  EXPECT_EQ(e.cycles, s.cycles);
}

TEST(Cpu, InstructionBudgetGuard) {
  Machine m(R"(
fn: b fn
)");
  EXPECT_THROW(m.cpu.call(m.program->entry("fn"), {}, 1000),
               std::runtime_error);
}

TEST(Cpu, UnalignedAccessFaults) {
  Machine m(R"(
fn: ldr r1, [r0]
    bx lr
)");
  EXPECT_THROW(m.cpu.call(m.program->entry("fn"), {kRamBase + 2}),
               std::runtime_error);
}

TEST(Cpu, OutOfRangeAccessFaults) {
  Machine m(R"(
fn: str r1, [r0]
    bx lr
)",
            256);
  EXPECT_THROW(m.cpu.call(m.program->entry("fn"), {kRamBase + 512}),
               std::out_of_range);
}

TEST(Cpu, BkptHalts) {
  Machine m(R"(
fn: movs r0, #5
    bkpt
    movs r0, #9
)");
  m.cpu.call(m.program->entry("fn"), {});
  EXPECT_EQ(m.cpu.reg(0), 5u);
}

TEST(Cpu, RsbNegates) {
  Machine m(R"(
fn: rsbs r0, r0, #0
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {5});
  EXPECT_EQ(m.cpu.reg(0), static_cast<std::uint32_t>(-5));
}

TEST(Cpu, RegisterShifts) {
  Machine m(R"(
fn: lsls r0, r1
    lsrs r2, r3
    bx lr
)");
  m.cpu.call(m.program->entry("fn"), {1, 4, 0x100, 4});
  EXPECT_EQ(m.cpu.reg(0), 16u);
  EXPECT_EQ(m.cpu.reg(2), 0x10u);
}

TEST(Cpu, ComparisonBranchesSignedUnsigned) {
  // blt is signed, blo (bcc) unsigned.
  Machine m(R"(
fn:  cmp r0, r1
     blt less
     movs r2, #0
     bx lr
less: movs r2, #1
     bx lr
)");
  m.cpu.call(m.program->entry("fn"), {static_cast<std::uint32_t>(-1), 1});
  EXPECT_EQ(m.cpu.reg(2), 1u);  // -1 < 1 signed
  m.cpu.call(m.program->entry("fn"), {0xFFFFFFFF, 1});
  EXPECT_EQ(m.cpu.reg(2), 1u);  // same bits
}

}  // namespace
}  // namespace eccm0::armvm
