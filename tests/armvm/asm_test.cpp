// Assembler syntax coverage: labels, operand forms, literal pools, error
// reporting, and agreement with the disassembler.
#include "armvm/asm.h"

#include <gtest/gtest.h>

#include "armvm/codec.h"

namespace eccm0::armvm {
namespace {

TEST(Asm, EmptyAndComments) {
  const ProgramRef p = assemble(R"(
; full line comment
   @ another

fn: bx lr  ; trailing
)");
  EXPECT_EQ(p->code().size(), 1u);
  EXPECT_EQ(p->entry("fn"), 0u);
}

TEST(Asm, KnownBytes) {
  const ProgramRef p = assemble("movs r0, #42\n eors r3, r4\n bx lr\n");
  ASSERT_EQ(p->code().size(), 3u);
  EXPECT_EQ(p->code()[0], 0x202A);
  EXPECT_EQ(p->code()[1], 0x4063);
  EXPECT_EQ(p->code()[2], 0x4770);
}

TEST(Asm, ForwardAndBackwardBranches) {
  const ProgramRef p = assemble(R"(
top:  b mid
      nop
mid:  bne top
      bx lr
)");
  // b mid: from addr 0, target 4: offset 0 -> 0xE000
  EXPECT_EQ(p->code()[0], 0xE000);
  // bne top: from addr 4, target 0: offset -8 -> imm8 = -4>>... 0xD1FC
  EXPECT_EQ(p->code()[2], 0xD1FC);
}

TEST(Asm, BlToFunction) {
  const ProgramRef p = assemble(R"(
main: bl fn
      bx lr
fn:   bx lr
)");
  const Decoded d = decode(p->code(), 0);
  EXPECT_EQ(d.ins.op, Op::kBl);
  EXPECT_EQ(d.halfwords, 2u);
  // target = 0 + 4 + imm = 6 (addr of fn)
  EXPECT_EQ(d.ins.imm, 2);
}

TEST(Asm, MultipleLabelsSameAddress) {
  const ProgramRef p = assemble(R"(
a: b c
b: c: bx lr
)");
  EXPECT_EQ(p->entry("b"), p->entry("c"));
  EXPECT_EQ(p->entry("b"), 2u);
}

TEST(Asm, MemoryOperandForms) {
  const ProgramRef p = assemble(R"(
fn: ldr r0, [r1]
    ldr r0, [r1, #8]
    ldr r0, [r1, r2]
    str r0, [sp, #4]
    ldrb r3, [r4, #1]
    strh r5, [r6, #2]
    bx lr
)");
  EXPECT_EQ(decode(p->code(), 0).ins.op, Op::kLdrImm);
  EXPECT_EQ(decode(p->code(), 0).ins.imm, 0);
  EXPECT_EQ(decode(p->code(), 1).ins.imm, 8);
  EXPECT_EQ(decode(p->code(), 2).ins.op, Op::kLdrReg);
  EXPECT_EQ(decode(p->code(), 3).ins.op, Op::kStrSp);
  EXPECT_EQ(decode(p->code(), 4).ins.op, Op::kLdrbImm);
  EXPECT_EQ(decode(p->code(), 5).ins.op, Op::kStrhImm);
}

TEST(Asm, RegListRanges) {
  const ProgramRef p = assemble("push {r0, r2-r4, lr}\n");
  const Decoded d = decode(p->code(), 0);
  EXPECT_EQ(d.ins.reg_list, 0x100u | 0b00011101u);
}

TEST(Asm, LiteralPoolDeduplicated) {
  const ProgramRef p = assemble(R"(
fn: ldr r0, =0xCAFEBABE
    ldr r1, =0xCAFEBABE
    bx lr
)");
  // 3 halfwords code + padding to word + one 2-halfword literal
  unsigned count = 0;
  for (std::size_t i = 0; i + 1 < p->code().size(); ++i) {
    if (p->code()[i] == 0xBABE && p->code()[i + 1] == 0xCAFE) ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Asm, WordDirective) {
  const ProgramRef p = assemble(R"(
data: .word 0x11223344
)");
  ASSERT_EQ(p->code().size(), 2u);
  EXPECT_EQ(p->code()[0], 0x3344);
  EXPECT_EQ(p->code()[1], 0x1122);
}

TEST(Asm, ShiftForms) {
  const ProgramRef p = assemble(R"(
fn: lsls r0, r1, #4
    lsrs r0, r1, #8
    asrs r0, r1, #2
    lsls r0, r1
    rors r2, r3
    bx lr
)");
  EXPECT_EQ(decode(p->code(), 0).ins.op, Op::kLslImm);
  EXPECT_EQ(decode(p->code(), 3).ins.op, Op::kLslReg);
  EXPECT_EQ(decode(p->code(), 4).ins.op, Op::kRorReg);
}

TEST(Asm, AddSubForms) {
  const ProgramRef p = assemble(R"(
fn: adds r0, r1, r2
    adds r0, r1, #7
    adds r0, #200
    subs r3, r4, r5
    sub sp, #8
    add sp, #8
    add r0, sp, #16
    add r0, r8
    bx lr
)");
  EXPECT_EQ(decode(p->code(), 0).ins.op, Op::kAddReg);
  EXPECT_EQ(decode(p->code(), 1).ins.op, Op::kAddImm3);
  EXPECT_EQ(decode(p->code(), 2).ins.op, Op::kAddImm8);
  EXPECT_EQ(decode(p->code(), 3).ins.op, Op::kSubReg);
  EXPECT_EQ(decode(p->code(), 4).ins.op, Op::kSubSpImm7);
  EXPECT_EQ(decode(p->code(), 5).ins.op, Op::kAddSpImm7);
  EXPECT_EQ(decode(p->code(), 6).ins.op, Op::kAddRdSp);
  EXPECT_EQ(decode(p->code(), 7).ins.op, Op::kAddHi);
}

TEST(Asm, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nnop\nbogus r0\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Asm, ErrorOnUndefinedLabel) {
  EXPECT_THROW(assemble("b nowhere\n"), std::invalid_argument);
}

TEST(Asm, ErrorOnDuplicateLabel) {
  EXPECT_THROW(assemble("a: nop\na: nop\n"), std::invalid_argument);
}

TEST(Asm, ErrorOnBadRegister) {
  EXPECT_THROW(assemble("movs r9, #1\n"), std::invalid_argument);
  EXPECT_THROW(assemble("adds r0, r1, r12\n"), std::invalid_argument);
}

TEST(Asm, ErrorOnRangeViolations) {
  EXPECT_THROW(assemble("movs r0, #300\n"), std::invalid_argument);
  EXPECT_THROW(assemble("lsls r0, r1, #32\n"), std::invalid_argument);
  EXPECT_THROW(assemble("ldr r0, [r1, #3]\n"), std::invalid_argument);
}

TEST(Asm, DisassemblyRoundTripThroughAssembler) {
  // Assemble, disassemble each instruction, re-assemble, compare bytes.
  const std::string src = R"(
fn: movs r0, #1
    lsls r1, r0, #5
    adds r2, r0, r1
    eors r2, r1
    muls r2, r0
    ldr r3, [r2, #4]
    str r3, [r2, #8]
    push {r4, lr}
    pop {r4, pc}
)";
  const ProgramRef p1 = assemble(src);
  std::string re;
  for (std::size_t i = 0; i < p1->code().size();) {
    const Decoded d = decode(p1->code(), i);
    re += disassemble(d.ins) + "\n";
    i += d.halfwords;
  }
  const ProgramRef p2 = assemble(re);
  EXPECT_EQ(p1->code(), p2->code());
}

}  // namespace
}  // namespace eccm0::armvm
