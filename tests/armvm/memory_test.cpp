// Direct unit tests of armvm::Memory: the out-of-line slow paths the
// inline fast paths hide (misalignment, boundaries, bulk image swaps),
// and the protection-codec layer (parity detect-only, SECDED
// correct-1/detect-2, wait-state accounting, scrubbing, and the
// check-bit sidecar surviving a snapshot round trip instead of being
// silently re-encoded clean).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "armvm/fault.h"
#include "armvm/memmodel.h"

namespace eccm0::armvm {
namespace {

constexpr std::size_t kSize = 0x100;

// ---- Raw slow paths -------------------------------------------------

TEST(MemorySlowPath, MisalignedAccessesFault) {
  Memory mem(kSize);
  EXPECT_THROW((void)mem.load16(kRamBase + 1), AlignmentFault);
  EXPECT_THROW((void)mem.load32(kRamBase + 2), AlignmentFault);
  EXPECT_THROW(mem.store16(kRamBase + 3, 1), AlignmentFault);
  EXPECT_THROW(mem.store32(kRamBase + 1, 1), AlignmentFault);
}

TEST(MemorySlowPath, BoundaryAccessesAreExact) {
  Memory mem(kSize);
  // off + width == size is the last legal access ...
  mem.store32(kRamBase + kSize - 4, 0xA1B2C3D4u);
  EXPECT_EQ(mem.load32(kRamBase + kSize - 4), 0xA1B2C3D4u);
  mem.store16(kRamBase + kSize - 2, 0xBEEF);
  EXPECT_EQ(mem.load16(kRamBase + kSize - 2), 0xBEEF);
  mem.store8(kRamBase + kSize - 1, 0x7E);
  EXPECT_EQ(mem.load8(kRamBase + kSize - 1), 0x7E);
  // ... and one word later it is a BusFault, not a wrap or a crash.
  EXPECT_THROW((void)mem.load32(kRamBase + kSize), BusFault);
  EXPECT_THROW(mem.store32(kRamBase + kSize, 1), BusFault);
  EXPECT_THROW((void)mem.load16(kRamBase + kSize), BusFault);
  EXPECT_THROW((void)mem.load8(kRamBase + kSize), BusFault);
  // Below RAM base is out of range too.
  EXPECT_THROW((void)mem.load32(kRamBase - 4), BusFault);
}

TEST(MemorySlowPath, SetBytesRejectsSizeMismatch) {
  Memory mem(kSize);
  const std::vector<std::uint8_t> small(kSize - 1, 0);
  const std::vector<std::uint8_t> big(kSize + 1, 0);
  EXPECT_THROW(mem.set_bytes(small), std::invalid_argument);
  EXPECT_THROW(mem.set_bytes(big), std::invalid_argument);
  const std::vector<std::uint8_t> exact(kSize, 0x5A);
  mem.set_bytes(exact);
  EXPECT_EQ(mem.load8(kRamBase), 0x5A);
}

// ---- Constructor validation ----------------------------------------

TEST(MemoryModelCfg, RawConfigDegeneratesToRawMemory) {
  Memory mem(kSize, MemModelConfig::raw());
  EXPECT_FALSE(mem.is_protected());
  EXPECT_EQ(mem.storage_bits_per_word(), 32u);
  mem.store32(kRamBase, 42);
  EXPECT_EQ(mem.load32(kRamBase), 42u);
  EXPECT_EQ(mem.take_pending_wait_cycles(), 0u);
}

TEST(MemoryModelCfg, ProtectedSizeMustBeWordMultiple) {
  EXPECT_THROW(Memory(kSize + 2, MemModelConfig::secded()),
               std::invalid_argument);
  EXPECT_THROW(Memory(kSize + 1, MemModelConfig::parity()),
               std::invalid_argument);
}

TEST(MemoryModelCfg, OnlySecdedAcceptsScrubInterval) {
  MemModelConfig raw_scrub = MemModelConfig::raw();
  raw_scrub.scrub_interval = 64;
  EXPECT_THROW(Memory(kSize, raw_scrub), std::invalid_argument);
  MemModelConfig parity_scrub = MemModelConfig::parity();
  parity_scrub.scrub_interval = 64;
  EXPECT_THROW(Memory(kSize, parity_scrub), std::invalid_argument);
  EXPECT_NO_THROW(Memory(kSize, MemModelConfig::secded(2, 64)));
}

TEST(MemoryModelCfg, NameRoundTripAndRejection) {
  EXPECT_EQ(mem_model_from_name("raw"), MemModelKind::kRaw);
  EXPECT_EQ(mem_model_from_name("parity"), MemModelKind::kParity);
  EXPECT_EQ(mem_model_from_name("secded"), MemModelKind::kSecded);
  EXPECT_THROW(mem_model_from_name("ecc"), std::invalid_argument);
}

// ---- Parity: detect-only --------------------------------------------

TEST(MemoryParity, SingleBitFlipDetected) {
  Memory mem(kSize, MemModelConfig::parity());
  EXPECT_TRUE(mem.is_protected());
  EXPECT_EQ(mem.storage_bits_per_word(), 33u);
  mem.poke32(kRamBase + 8, 0xDEADBEEFu);
  mem.flip_storage_bit(2, 7);
  try {
    (void)mem.load32(kRamBase + 8);
    FAIL() << "expected MemoryIntegrityFault";
  } catch (const MemoryIntegrityFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kMemoryIntegrity);
    EXPECT_EQ(f.address(), kRamBase + 8);
  }
  // Still catchable by the legacy std type.
  EXPECT_THROW((void)mem.peek32(kRamBase + 8), std::runtime_error);
}

TEST(MemoryParity, FlippedParityBitDetectedAndDoubleFlipEscapes) {
  Memory mem(kSize, MemModelConfig::parity());
  mem.poke32(kRamBase, 0x12345678u);
  mem.flip_storage_bit(0, 32);  // the parity bit itself
  EXPECT_THROW((void)mem.load32(kRamBase), MemoryIntegrityFault);
  mem.poke32(kRamBase, 0x12345678u);  // re-encode clean
  // An even number of flips keeps parity: the model's documented miss.
  mem.flip_storage_bit(0, 3);
  mem.flip_storage_bit(0, 17);
  EXPECT_EQ(mem.load32(kRamBase), 0x12345678u ^ (1u << 3) ^ (1u << 17));
}

// ---- SECDED: correct one, detect two --------------------------------

TEST(MemorySecded, EverySingleBitFlipIsCorrected) {
  Memory mem(kSize, MemModelConfig::secded());
  EXPECT_EQ(mem.storage_bits_per_word(), 39u);
  const std::uint32_t v = 0xC0FFEE42u;
  // All 39 storage positions: data bits 0..31, check bits 32..38.
  for (unsigned bit = 0; bit < 39; ++bit) {
    mem.poke32(kRamBase + 4, v);
    mem.flip_storage_bit(1, bit);
    EXPECT_EQ(mem.load32(kRamBase + 4), v) << "bit " << bit;
  }
  EXPECT_EQ(mem.corrections(), 39u);
}

TEST(MemorySecded, LoadsDoNotRepairStorage) {
  // Correction happens on the fly; the stored codeword stays rotten
  // until a store or a scrub rewrites it. That is what makes the scrub
  // interval an observable parameter.
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase, 7);
  mem.flip_storage_bit(0, 5);
  EXPECT_EQ(mem.peek32(kRamBase), 7u);
  EXPECT_EQ(mem.peek32(kRamBase), 7u);
  EXPECT_EQ(mem.corrections(), 2u);  // corrected twice = not written back
  mem.scrub();
  EXPECT_EQ(mem.scrub_corrections(), 1u);
  (void)mem.peek32(kRamBase);
  EXPECT_EQ(mem.corrections(), 2u);  // clean after the scrub
}

TEST(MemorySecded, DoubleBitFlipFaults) {
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase + 12, 0xFFFFFFFFu);
  mem.flip_storage_bit(3, 1);
  mem.flip_storage_bit(3, 30);
  try {
    (void)mem.load32(kRamBase + 12);
    FAIL() << "expected MemoryIntegrityFault";
  } catch (const MemoryIntegrityFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kMemoryIntegrity);
    EXPECT_EQ(f.address(), kRamBase + 12);
  }
}

TEST(MemorySecded, SubWordStoreIsReadModifyWrite) {
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase, 0x11223344u);
  mem.flip_storage_bit(0, 9);
  // A byte store decodes (correcting the flip), merges, re-encodes: the
  // whole word is clean afterwards.
  mem.store8(kRamBase + 1, 0xAB);
  EXPECT_EQ(mem.corrections(), 1u);
  EXPECT_EQ(mem.load32(kRamBase), 0x1122AB44u);
  EXPECT_EQ(mem.corrections(), 1u);  // no second correction needed
  // On a rotten word the RMW faults rather than merging garbage.
  mem.poke32(kRamBase + 4, 0);
  mem.flip_storage_bit(1, 2);
  mem.flip_storage_bit(1, 3);
  EXPECT_THROW(mem.store16(kRamBase + 4, 0xF00D), MemoryIntegrityFault);
}

TEST(MemorySecded, AlignmentAndRangeOutrankIntegrity) {
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase, 1);
  mem.flip_storage_bit(0, 0);
  mem.flip_storage_bit(0, 1);
  // The rotten word is never consulted for a misaligned or out-of-range
  // address: fault precedence is alignment, then range, then integrity.
  EXPECT_THROW((void)mem.load32(kRamBase + 2), AlignmentFault);
  EXPECT_THROW((void)mem.load32(kRamBase + kSize), BusFault);
}

TEST(MemorySecded, FlipStorageBitRejectsOutOfRange) {
  Memory mem(kSize, MemModelConfig::secded());
  EXPECT_THROW(mem.flip_storage_bit(0, 39), std::out_of_range);
  EXPECT_THROW(mem.flip_storage_bit(kSize / 4, 0), std::out_of_range);
  Memory raw(kSize);
  EXPECT_THROW(raw.flip_storage_bit(0, 32), std::out_of_range);
}

// ---- Wait states and scrubbing --------------------------------------

TEST(MemorySecded, AccessesChargeWaitStatesPokesDoNot) {
  Memory mem(kSize, MemModelConfig::secded(2));
  mem.poke32(kRamBase, 5);  // harness poke: free
  EXPECT_EQ(mem.take_pending_wait_cycles(), 0u);
  (void)mem.load32(kRamBase);
  mem.store8(kRamBase + 1, 2);
  EXPECT_EQ(mem.protected_accesses(), 2u);
  EXPECT_EQ(mem.take_pending_wait_cycles(), 4u);
  EXPECT_EQ(mem.take_pending_wait_cycles(), 0u);  // drained
  (void)mem.peek32(kRamBase);  // harness peek: free
  EXPECT_EQ(mem.take_pending_wait_cycles(), 0u);
}

TEST(MemorySecded, AutoScrubFiresEveryInterval) {
  Memory mem(kSize, MemModelConfig::secded(1, 4));
  mem.poke32(kRamBase, 9);
  mem.flip_storage_bit(0, 11);
  for (int i = 0; i < 4; ++i) (void)mem.load32(kRamBase + 8);
  EXPECT_EQ(mem.scrub_passes(), 1u);
  EXPECT_EQ(mem.scrub_corrections(), 1u);
  EXPECT_EQ(mem.accesses_since_scrub(), 0u);
  // The pass swept every word at wait_states cycles each, on top of the
  // four access charges.
  EXPECT_EQ(mem.take_pending_wait_cycles(), 4u + kSize / 4);
}

TEST(MemorySecded, ScrubFaultsOnUncorrectableWord) {
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase + 20, 3);
  mem.flip_storage_bit(5, 4);
  mem.flip_storage_bit(5, 33);
  EXPECT_THROW(mem.scrub(), MemoryIntegrityFault);
}

// ---- Snapshot round trip keeps corrupt storage corrupt --------------

TEST(MemorySnapshot, SetBytesAloneReencodesClean) {
  Memory mem(kSize, MemModelConfig::secded());
  mem.poke32(kRamBase, 0x600DF00Du);
  mem.flip_storage_bit(0, 6);
  const std::vector<std::uint8_t> image(mem.bytes().begin(),
                                        mem.bytes().end());
  mem.set_bytes(image);  // logical image: storage comes back clean
  (void)mem.peek32(kRamBase);
  EXPECT_EQ(mem.corrections(), 0u);
}

TEST(MemorySnapshot, RestoreProtectionKeepsInjectedErrorAlive) {
  // The regression this guards: a snapshot/restore cycle must not
  // silently "correct" deliberately corrupted storage. The check-bit
  // sidecar travels with the snapshot and is reinstated verbatim.
  Memory mem(kSize, MemModelConfig::secded(2, 64));
  mem.poke32(kRamBase + 16, 0x0BADF00Du);
  mem.flip_storage_bit(4, 21);
  const std::vector<std::uint8_t> image(mem.bytes().begin(),
                                        mem.bytes().end());
  const std::vector<std::uint8_t> check(mem.check_bytes().begin(),
                                        mem.check_bytes().end());

  Memory other(kSize, MemModelConfig::secded(2, 64));
  other.set_bytes(image);
  other.restore_protection(check, 7);
  EXPECT_EQ(other.accesses_since_scrub(), 7u);
  EXPECT_EQ(other.peek32(kRamBase + 16), 0x0BADF00Du);
  EXPECT_EQ(other.corrections(), 1u);  // the flip survived the trip
}

TEST(MemorySnapshot, RestoreProtectionValidates) {
  Memory raw(kSize);
  raw.restore_protection({}, 0);  // raw accepts exactly the empty sidecar
  const std::vector<std::uint8_t> bogus(kSize / 4, 0);
  EXPECT_THROW(raw.restore_protection(bogus, 0), std::invalid_argument);
  Memory prot(kSize, MemModelConfig::parity());
  const std::vector<std::uint8_t> wrong(kSize / 4 - 1, 0);
  EXPECT_THROW(prot.restore_protection(wrong, 0), std::invalid_argument);
}

TEST(MemorySnapshot, CpuRoundTripCarriesCheckBits) {
  // Full-machine version: snapshot a Cpu running on SECDED RAM with a
  // live injected error, restore into a fresh context, and the error is
  // still there (and still correctable) after the trip.
  const ProgramRef prog = assemble(R"(
entry: movs r1, #1
       lsls r1, r1, #29   ; RAM base
       ldr r0, [r1]
       bx lr
)");
  Memory mem(1 << 12, MemModelConfig::secded(2));
  Cpu cpu(prog, mem);
  mem.poke32(kRamBase, 0x5EEDBEEFu);
  mem.flip_storage_bit(0, 13);
  const MachineSnapshot s = cpu.snapshot();
  EXPECT_FALSE(s.check.empty());

  Memory mem2(1 << 12, MemModelConfig::secded(2));
  Cpu cpu2(prog, mem2);
  cpu2.restore(s);
  EXPECT_TRUE(cpu2.snapshot() == s);
  cpu2.set_reg(kLR, kReturnSentinel);
  cpu2.set_reg(kPC, prog->entry("entry"));
  while (cpu2.step()) {
  }
  EXPECT_EQ(cpu2.reg(0), 0x5EEDBEEFu);  // corrected on the fly
  EXPECT_EQ(mem2.corrections(), 1u);
}

}  // namespace
}  // namespace eccm0::armvm
