// Differential test of the pre-decoded execution engine against the
// per-step-decode reference engine: on the real K-233 field kernels and a
// kP-shaped schedule of them, both engines must retire the same
// instruction stream — identical cycle counts, per-class histograms,
// energy reports, trace-sink event streams, registers and memory.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "common/rng.h"
#include "gf2/sqr_table.h"

namespace eccm0::armvm {
namespace {

constexpr std::size_t kRamSize = 0x800;

/// Records every rich retired-instruction event for stream-level
/// comparison: PC, decoded form, cost pairs, memory accesses, next PC.
struct RecordingSink final : TraceSink {
  std::vector<TraceEvent> events;
  void on_retire(const TraceEvent& ev) override { events.push_back(ev); }
};

void expect_stats_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  for (int i = 0; i < static_cast<int>(costmodel::InstrClass::kCount); ++i) {
    EXPECT_EQ(a.histogram.cycles[i], b.histogram.cycles[i])
        << "histogram class " << i;
  }
  EXPECT_EQ(a.energy().energy_uj(), b.energy().energy_uj());
  EXPECT_EQ(a.energy().avg_power_uw(), b.energy().avg_power_uw());
  EXPECT_EQ(a.energy().time_ms(), b.energy().time_ms());
}

struct Engine {
  Engine(const ProgramRef& prog, Cpu::DecodeMode mode)
      : mem(kRamSize), cpu(prog, mem, mode) {
    cpu.set_trace_sink(&sink);
  }
  Memory mem;
  Cpu cpu;
  RecordingSink sink;
};

/// Runs `prog` on both engines with `setup` applied to each Memory, then
/// asserts stats, trace streams, registers and all of RAM are identical.
void run_differential(const ProgramRef& prog,
                      const std::function<void(Memory&)>& setup) {
  Engine ref(prog, Cpu::DecodeMode::kPerStep);
  Engine pre(prog, Cpu::DecodeMode::kPredecode);
  setup(ref.mem);
  setup(pre.mem);
  const RunStats a = ref.cpu.call(prog->entry("entry"), {});
  const RunStats b = pre.cpu.call(prog->entry("entry"), {});
  expect_stats_identical(a, b);
  EXPECT_EQ(ref.sink.events, pre.sink.events);
  for (unsigned r = 0; r < 13; ++r) {
    EXPECT_EQ(ref.cpu.reg(r), pre.cpu.reg(r)) << "r" << r;
  }
  EXPECT_EQ(ref.cpu.flag_n(), pre.cpu.flag_n());
  EXPECT_EQ(ref.cpu.flag_z(), pre.cpu.flag_z());
  EXPECT_EQ(ref.cpu.flag_c(), pre.cpu.flag_c());
  EXPECT_EQ(ref.cpu.flag_v(), pre.cpu.flag_v());
  const auto ram_a = ref.mem.read_words(kRamBase, kRamSize / 4);
  const auto ram_b = pre.mem.read_words(kRamBase, kRamSize / 4);
  EXPECT_EQ(ram_a, ram_b);
}

std::array<std::uint32_t, 8> random_fe(Rng& rng) {
  std::array<std::uint32_t, 8> v;
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
  v[7] &= 0x1FF;  // 233-bit field element
  return v;
}

void write_fe(Memory& mem, std::uint32_t off,
              const std::array<std::uint32_t, 8>& v) {
  for (int w = 0; w < 8; ++w) mem.store32(kRamBase + off + 4 * w, v[w]);
}

TEST(Predecode, FieldMulFixedRegistersIdentical) {
  const ProgramRef prog = assemble(asmkernels::gen_mul_fixed(true));
  Rng rng(0xF1E1D);
  const auto x = random_fe(rng), y = random_fe(rng);
  run_differential(prog, [&](Memory& mem) {
    write_fe(mem, asmkernels::kXOff, x);
    write_fe(mem, asmkernels::kYOff, y);
  });
}

TEST(Predecode, FieldMulPlainMemoryIdentical) {
  const ProgramRef prog = assemble(asmkernels::gen_mul_plain(true));
  Rng rng(0x71A17);
  const auto x = random_fe(rng), y = random_fe(rng);
  run_differential(prog, [&](Memory& mem) {
    write_fe(mem, asmkernels::kXOff, x);
    write_fe(mem, asmkernels::kYOff, y);
  });
}

TEST(Predecode, KpScheduleIdentical) {
  // A kP-shaped schedule: the field-kernel mix of a (scaled-down) wTNAF
  // w=4 point multiplication — muls, squarings and one EEA inversion,
  // executed back-to-back on persistent per-kernel machines exactly like
  // bench_vm_throughput's workload.
  const ProgramRef mul_prog = assemble(asmkernels::gen_mul_fixed(true));
  const ProgramRef sqr_prog = assemble(asmkernels::gen_sqr());
  const ProgramRef inv_prog = assemble(asmkernels::gen_inv());
  constexpr unsigned kMuls = 19, kSqrs = 47, kInvs = 1;

  Rng rng(0x5CED);
  const auto x = random_fe(rng), y = random_fe(rng);
  auto a = random_fe(rng);
  a[0] |= 1;  // nonzero for inversion

  auto run_schedule = [&](Cpu::DecodeMode mode, RunStats& total,
                          RecordingSink& sink,
                          std::vector<std::uint32_t>& outputs) {
    Memory mul_mem(kRamSize), sqr_mem(kRamSize), inv_mem(kRamSize);
    write_fe(mul_mem, asmkernels::kXOff, x);
    write_fe(mul_mem, asmkernels::kYOff, y);
    write_fe(sqr_mem, asmkernels::kInOff, a);
    for (unsigned i = 0; i < 256; ++i) {
      sqr_mem.store16(kRamBase + asmkernels::kSqrTabOff + 2 * i,
                      gf2::kSquareTable[i]);
    }
    Cpu mul_cpu(mul_prog, mul_mem, mode);
    Cpu sqr_cpu(sqr_prog, sqr_mem, mode);
    Cpu inv_cpu(inv_prog, inv_mem, mode);
    mul_cpu.set_trace_sink(&sink);
    sqr_cpu.set_trace_sink(&sink);
    inv_cpu.set_trace_sink(&sink);
    for (unsigned i = 0; i < kMuls; ++i) {
      mul_cpu.call(mul_prog->entry("entry"), {});
    }
    for (unsigned i = 0; i < kSqrs; ++i) {
      sqr_cpu.call(sqr_prog->entry("entry"), {});
    }
    for (unsigned i = 0; i < kInvs; ++i) {
      write_fe(inv_mem, asmkernels::kInOff, a);
      inv_cpu.call(inv_prog->entry("entry"), {});
    }
    total = mul_cpu.stats();
    total.instructions +=
        sqr_cpu.stats().instructions + inv_cpu.stats().instructions;
    total.cycles += sqr_cpu.stats().cycles + inv_cpu.stats().cycles;
    total.histogram += sqr_cpu.stats().histogram;
    total.histogram += inv_cpu.stats().histogram;
    for (int w = 0; w < 8; ++w) {
      outputs.push_back(mul_mem.load32(kRamBase + asmkernels::kVOff + 4 * w));
      outputs.push_back(
          sqr_mem.load32(kRamBase + asmkernels::kOutOff + 4 * w));
      outputs.push_back(
          inv_mem.load32(kRamBase + asmkernels::kOutOff + 4 * w));
    }
  };

  RunStats ref_stats, pre_stats;
  RecordingSink ref_sink, pre_sink;
  std::vector<std::uint32_t> ref_out, pre_out;
  run_schedule(Cpu::DecodeMode::kPerStep, ref_stats, ref_sink, ref_out);
  run_schedule(Cpu::DecodeMode::kPredecode, pre_stats, pre_sink, pre_out);
  expect_stats_identical(ref_stats, pre_stats);
  EXPECT_EQ(ref_sink.events, pre_sink.events);
  EXPECT_EQ(ref_out, pre_out);
  EXPECT_GT(pre_stats.instructions, 100000u);  // a real workload, not a stub
}

TEST(Predecode, RichTraceStreamsIdenticalForMulAndSqrKernels) {
  // Both decode engines must emit bit-identical *rich* trace event
  // streams — same PCs, decoded instructions, cost pairs and memory
  // access addresses/widths — for the K-233 mul and square kernels.
  Rng rng(0x51C);
  for (const bool fixed : {true, false}) {
    const ProgramRef prog = assemble(fixed ? asmkernels::gen_mul_fixed(true)
                                        : asmkernels::gen_mul_plain(true));
    const auto x = random_fe(rng), y = random_fe(rng);
    Engine ref(prog, Cpu::DecodeMode::kPerStep);
    Engine pre(prog, Cpu::DecodeMode::kPredecode);
    for (Memory* mem : {&ref.mem, &pre.mem}) {
      write_fe(*mem, asmkernels::kXOff, x);
      write_fe(*mem, asmkernels::kYOff, y);
    }
    ref.cpu.call(prog->entry("entry"), {});
    pre.cpu.call(prog->entry("entry"), {});
    ASSERT_EQ(ref.sink.events.size(), pre.sink.events.size());
    EXPECT_EQ(ref.sink.events, pre.sink.events);
    // The stream is genuinely rich: it carries memory addresses.
    std::uint64_t accesses = 0, load_words = 0;
    for (const TraceEvent& ev : pre.sink.events) {
      accesses += ev.num_accesses;
      for (unsigned i = 0; i < ev.num_accesses; ++i) {
        if (!ev.accesses[i].store && ev.accesses[i].width == 4) ++load_words;
      }
      EXPECT_GE(ev.num_costs, 1u);
      EXPECT_EQ(ev.cycles(), ev.costs[0].cycles +
                                 (ev.num_costs > 1 ? ev.costs[1].cycles : 0u));
    }
    EXPECT_GT(accesses, 100u);
    EXPECT_GT(load_words, 50u);
  }

  const ProgramRef sqr_prog = assemble(asmkernels::gen_sqr());
  const auto a = random_fe(rng);
  Engine ref(sqr_prog, Cpu::DecodeMode::kPerStep);
  Engine pre(sqr_prog, Cpu::DecodeMode::kPredecode);
  for (Memory* mem : {&ref.mem, &pre.mem}) {
    write_fe(*mem, asmkernels::kInOff, a);
    for (unsigned i = 0; i < 256; ++i) {
      mem->store16(kRamBase + asmkernels::kSqrTabOff + 2 * i,
                   gf2::kSquareTable[i]);
    }
  }
  ref.cpu.call(sqr_prog->entry("entry"), {});
  pre.cpu.call(sqr_prog->entry("entry"), {});
  EXPECT_EQ(ref.sink.events, pre.sink.events);
  // Simulated-clock timestamps reconstruct the cycle count exactly.
  ASSERT_FALSE(pre.sink.events.empty());
  const TraceEvent& last = pre.sink.events.back();
  EXPECT_EQ(last.cycle + last.cycles(), pre.cpu.stats().cycles);
}

TEST(Predecode, LoopingInversionKernelIdentical) {
  // The EEA inversion is the one genuinely branchy, data-dependent
  // kernel — the strongest exercise of branch-target handling in the
  // cached engine.
  const ProgramRef prog = assemble(asmkernels::gen_inv());
  Rng rng(0x1EA);
  auto a = random_fe(rng);
  a[0] |= 1;
  run_differential(prog, [&](Memory& mem) {
    write_fe(mem, asmkernels::kInOff, a);
  });
}

TEST(Predecode, LiteralPoolDataSlotsAreHarmless) {
  // `ldr rN, =imm` materializes a literal pool after the code; those
  // data words do not decode as instructions. Predecoding must tolerate
  // them (lazy trap slots) and execution must never touch the traps.
  const ProgramRef prog = assemble(R"(
entry:
    ldr r0, =0x12345678
    ldr r1, =0xCAFEBABE
    adds r0, r0, r1
    bx lr
)");
  Engine ref(prog, Cpu::DecodeMode::kPerStep);
  Engine pre(prog, Cpu::DecodeMode::kPredecode);
  const RunStats a = ref.cpu.call(prog->entry("entry"), {});
  const RunStats b = pre.cpu.call(prog->entry("entry"), {});
  expect_stats_identical(a, b);
  EXPECT_EQ(ref.cpu.reg(0), 0x12345678u + 0xCAFEBABEu);
  EXPECT_EQ(pre.cpu.reg(0), 0x12345678u + 0xCAFEBABEu);
}

TEST(Predecode, UndecodableSlotTrapsWithPerStepError) {
  // Jumping into a data word must raise the same decode error the
  // per-step engine raises, from the same architectural state.
  const std::vector<std::uint16_t> image = {
      0x2007,  // movs r0, #7
      0xBA80,  // undefined (0xBA80 hole in the REV group)
  };
  Memory mem_a(kRamSize), mem_b(kRamSize);
  Cpu ref(image, mem_a, Cpu::DecodeMode::kPerStep);
  Cpu pre(image, mem_b, Cpu::DecodeMode::kPredecode);
  std::string err_a, err_b;
  try {
    ref.call(0, {});
  } catch (const std::invalid_argument& e) {
    err_a = e.what();
  }
  try {
    pre.call(0, {});
  } catch (const std::invalid_argument& e) {
    err_b = e.what();
  }
  EXPECT_FALSE(err_a.empty());
  EXPECT_EQ(err_a, err_b);
  expect_stats_identical(ref.stats(), pre.stats());
  EXPECT_EQ(ref.reg(0), 7u);
  EXPECT_EQ(pre.reg(0), 7u);
}

TEST(Predecode, TypedDecodeFaultIdenticalAcrossEngines) {
  // Both engines must raise the same typed DecodeFault — same kind,
  // message, faulting address AND architectural-state snapshot.
  const std::vector<std::uint16_t> image = {
      0x2007,  // movs r0, #7
      0xBA80,  // undefined (0xBA80 hole in the REV group)
  };
  Memory mem_a(kRamSize), mem_b(kRamSize);
  Cpu ref(image, mem_a, Cpu::DecodeMode::kPerStep);
  Cpu pre(image, mem_b, Cpu::DecodeMode::kPredecode);
  auto capture = [](Cpu& cpu) {
    try {
      cpu.call(0, {});
    } catch (const Fault& f) {
      EXPECT_TRUE(f.has_state());
      return std::make_tuple(f.kind(), f.message(), f.address(), f.state());
    }
    ADD_FAILURE() << "no typed fault raised";
    return std::make_tuple(FaultKind::kBusFault, std::string{},
                           std::uint32_t{0}, ArchState{});
  };
  const auto a = capture(ref);
  const auto b = capture(pre);
  EXPECT_EQ(std::get<0>(a), FaultKind::kDecodeFault);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));  // identical ArchState
  EXPECT_EQ(std::get<3>(a).r[0], 7u);
  EXPECT_EQ(std::get<3>(a).instructions, 1u);
}

TEST(Predecode, MemoryFaultStateIdenticalAcrossEngines) {
  // A data abort mid-run: a load from far outside RAM must surface as
  // the same BusFault, with identical state, from both engines.
  const ProgramRef prog = assemble(R"(
entry:
    movs r0, #7
    ldr r1, =0x30000000
    ldr r2, [r1]
    bx lr
)");
  Engine ref(prog, Cpu::DecodeMode::kPerStep);
  Engine pre(prog, Cpu::DecodeMode::kPredecode);
  auto capture = [&](Cpu& cpu) {
    try {
      cpu.call(prog->entry("entry"), {});
    } catch (const BusFault& f) {
      EXPECT_TRUE(f.has_state());
      return std::make_tuple(f.message(), f.address(), f.state());
    }
    ADD_FAILURE() << "no BusFault raised";
    return std::make_tuple(std::string{}, std::uint32_t{0}, ArchState{});
  };
  const auto a = capture(ref.cpu);
  const auto b = capture(pre.cpu);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), 0x30000000u);
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<2>(a).r[0], 7u);
  EXPECT_EQ(ref.sink.events, pre.sink.events);
}

TEST(Predecode, InstructionBudgetTripsIdentically) {
  const ProgramRef prog = assemble(R"(
entry:
loop: b loop
)");
  Engine ref(prog, Cpu::DecodeMode::kPerStep);
  Engine pre(prog, Cpu::DecodeMode::kPredecode);
  EXPECT_THROW(ref.cpu.call(prog->entry("entry"), {}, 100000),
               std::runtime_error);  // legacy catch still works
  ArchState pre_state;
  try {
    pre.cpu.call(prog->entry("entry"), {}, 100000);
    ADD_FAILURE() << "budget did not trip";
  } catch (const BudgetFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kBudgetExhausted);
    ASSERT_TRUE(f.has_state());
    pre_state = f.state();
  }
  // Both engines retired exactly budget + 1 instructions before tripping.
  expect_stats_identical(ref.cpu.stats(), pre.cpu.stats());
  EXPECT_EQ(pre.cpu.stats().instructions, 100001u);
  EXPECT_EQ(pre_state.instructions, 100001u);
  EXPECT_EQ(pre_state, pre.cpu.arch_state());
}

}  // namespace
}  // namespace eccm0::armvm
