// MachineSnapshot / restore semantics: checkpoint a run mid-flight,
// fork it into another context, and prove the fork is bit-identical to
// letting the original continue — plus the documented asymmetry of
// set_arch_state() and the resettable halted latch.
#include <gtest/gtest.h>

#include "armvm/asm.h"
#include "armvm/cpu.h"

namespace eccm0::armvm {
namespace {

constexpr std::size_t kRamSize = 1 << 12;

// A loop with RAM traffic so snapshots carry non-trivial memory state:
// writes i*i to successive words while summing them.
const char* kLoopSrc = R"(
entry: movs r1, #0        ; acc
       movs r2, #16       ; i
       movs r3, #1
       lsls r3, r3, #29   ; r3 = RAM base
loop:  movs r4, r2
       muls r4, r2
       str r4, [r3]
       ldr r5, [r3]
       adds r1, r1, r5
       adds r3, #4
       subs r2, #1
       bne loop
       movs r0, r1
       bx lr
)";

struct Machine {
  explicit Machine(ProgramRef p) : prog(std::move(p)), mem(kRamSize),
                                   cpu(prog, mem) {}
  ProgramRef prog;
  Memory mem;
  Cpu cpu;

  void start() {
    cpu.set_reg(kLR, kReturnSentinel);
    cpu.set_reg(kPC, prog->entry("entry"));
  }
  void run_to_halt() {
    while (cpu.step()) {
    }
  }
  std::uint64_t step_n(std::uint64_t n) {
    std::uint64_t done = 0;
    while (done < n && cpu.step()) ++done;
    return done;
  }
};

TEST(Snapshot, RoundTripEquality) {
  const ProgramRef prog = assemble(kLoopSrc);
  Machine m(prog);
  m.start();
  m.step_n(40);
  const MachineSnapshot s = m.cpu.snapshot();

  // A snapshot of a restored context is the snapshot itself.
  Machine n(prog);
  n.cpu.restore(s);
  EXPECT_TRUE(n.cpu.snapshot() == s);

  // Restoring onto the same context is also exact.
  m.run_to_halt();
  m.cpu.restore(s);
  EXPECT_TRUE(m.cpu.snapshot() == s);
}

TEST(Snapshot, ForkMatchesContinuation) {
  const ProgramRef prog = assemble(kLoopSrc);
  Machine a(prog);
  a.start();
  a.step_n(37);
  const MachineSnapshot s = a.cpu.snapshot();

  // Continue the original to completion.
  a.run_to_halt();

  // Fork: a fresh context restored from the checkpoint must converge to
  // the same architectural state, stats, and RAM.
  Machine b(prog);
  b.cpu.restore(s);
  b.run_to_halt();

  EXPECT_TRUE(a.cpu.snapshot() == b.cpu.snapshot());
  EXPECT_EQ(a.cpu.reg(0), b.cpu.reg(0));
  EXPECT_EQ(a.cpu.stats().cycles, b.cpu.stats().cycles);
}

TEST(Snapshot, CapturesHaltedLatchAndRam) {
  const ProgramRef prog = assemble("entry: movs r0, #3\n bkpt\n");
  Machine m(prog);
  m.start();
  m.run_to_halt();
  EXPECT_TRUE(m.cpu.halted());
  const MachineSnapshot s = m.cpu.snapshot();
  EXPECT_TRUE(s.halted);

  Machine n(prog);
  EXPECT_FALSE(n.cpu.halted());
  n.cpu.restore(s);
  EXPECT_TRUE(n.cpu.halted());
  EXPECT_EQ(n.cpu.reg(0), 3u);
}

TEST(Snapshot, RestoreRejectsRamSizeMismatch) {
  const ProgramRef prog = assemble("entry: bx lr\n");
  Machine m(prog);
  m.start();
  const MachineSnapshot s = m.cpu.snapshot();

  Memory small(kRamSize / 2);
  Cpu other(prog, small);
  EXPECT_THROW(other.restore(s), std::invalid_argument);
}

TEST(Cpu, ResetStatsPlusSetArchStateGivesCleanRerun) {
  // The documented asymmetry: set_arch_state() restores registers and
  // flags only. reset_stats() + set_arch_state() + clear_halted() is a
  // clean re-run whose stats match a fresh context exactly.
  const ProgramRef prog = assemble(kLoopSrc);
  Machine fresh(prog);
  fresh.start();
  const ArchState start_state = fresh.cpu.arch_state();
  fresh.run_to_halt();
  const RunStats first = fresh.cpu.stats();
  EXPECT_TRUE(fresh.cpu.halted());

  // Stats survive set_arch_state — that is the asymmetry.
  fresh.cpu.set_arch_state(start_state);
  EXPECT_EQ(fresh.cpu.stats().instructions, first.instructions);

  // The full recipe re-arms the context for an identical second run.
  fresh.cpu.reset_stats();
  fresh.cpu.clear_halted();
  EXPECT_FALSE(fresh.cpu.halted());
  fresh.run_to_halt();
  EXPECT_TRUE(fresh.cpu.stats() == first);
}

TEST(Cpu, HaltedLatchIsResettable) {
  const ProgramRef prog = assemble("entry: movs r0, #1\n bkpt\n");
  Machine m(prog);
  m.start();
  m.run_to_halt();
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_FALSE(m.cpu.step());  // latched: no further retirement

  m.cpu.clear_halted();
  m.cpu.set_reg(kPC, prog->entry("entry"));
  m.cpu.set_reg(kLR, kReturnSentinel);
  EXPECT_TRUE(m.cpu.step());  // runs again after re-arming
}

}  // namespace
}  // namespace eccm0::armvm
