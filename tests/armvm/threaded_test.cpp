// Three-way differential test of the token-threaded superinstruction
// engine (DecodeMode::kThreaded) against the per-step oracle and the
// predecoded engine: over every registry kernel, all three must retire
// the same instruction stream — identical cycle counts, histograms,
// energy, registers, RAM and (traced) rich event streams — and agree
// bit-for-bit on the awkward paths: snapshot/restore into the middle of
// a fused block, a fault at a retirement index interior to a
// superinstruction, and the instruction-budget trip point.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "armvm/dispatch.h"
#include "armvm/superinst.h"
#include "asmkernels/gen.h"
#include "common/rng.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

namespace eccm0::armvm {
namespace {

using workloads::KernelMachine;
using workloads::KernelOperands;
using workloads::KernelRegistry;

constexpr std::size_t kRamSize = workloads::kKernelRamSize;

constexpr Cpu::DecodeMode kAllModes[] = {
    Cpu::DecodeMode::kPerStep,
    Cpu::DecodeMode::kPredecode,
    Cpu::DecodeMode::kThreaded,
};

struct RecordingSink final : TraceSink {
  std::vector<TraceEvent> events;
  void on_retire(const TraceEvent& ev) override { events.push_back(ev); }
};

void expect_stats_identical(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  for (int i = 0; i < static_cast<int>(costmodel::InstrClass::kCount); ++i) {
    EXPECT_EQ(a.histogram.cycles[i], b.histogram.cycles[i])
        << "histogram class " << i;
  }
  EXPECT_EQ(a.energy().energy_uj(), b.energy().energy_uj());
}

/// Deterministic operand recipe covering every registry kernel,
/// including the K-163 family the sca loader has no recipe for.
void load_operands(const std::string& name, Memory& mem) {
  const KernelOperands& ops = KernelOperands::standard();
  const workloads::KernelInfo info = KernelRegistry::instance().info(name);
  if (!info.binary_field) {
    const workloads::CurveRef& curve = workloads::curve_from_name(info.curve);
    const workloads::PrimeOperands& pod =
        workloads::PrimeOperands::standard(curve);
    workloads::load_prime_modulus(mem, curve);
    if (name.ends_with("-mul") || name.ends_with("-mont") ||
        name.ends_with("-sqr")) {
      workloads::load_prime_mul_inputs(mem, pod.x, pod.y);
    } else if (name.ends_with("-redc")) {
      workloads::load_prime_wide_input(mem, pod.wide);
    } else if (name.ends_with("-inv")) {
      workloads::load_prime_inv_input(mem, pod.a);
    } else {
      ADD_FAILURE() << "no operand recipe for prime kernel " << name;
    }
    return;
  }
  if (name.rfind("mul163", 0) == 0) {
    Rng rng(0x163F00D);
    std::uint32_t x[6], y[6];
    for (auto& w : x) w = static_cast<std::uint32_t>(rng.next_u64());
    for (auto& w : y) w = static_cast<std::uint32_t>(rng.next_u64());
    x[5] &= 0x7;  // 163-bit field elements
    y[5] &= 0x7;
    for (int w = 0; w < 6; ++w) {
      mem.store32(kRamBase + asmkernels::kXOff + 4u * w, x[w]);
      mem.store32(kRamBase + asmkernels::kYOff + 4u * w, y[w]);
    }
  } else if (name.rfind("mul", 0) == 0) {
    workloads::load_mul_inputs(mem, ops.x, ops.y);
  } else if (name == "sqr") {
    workloads::load_sqr_table(mem);
    workloads::load_sqr_input(mem, ops.a);
  } else if (name == "lut") {
    std::uint32_t zero[8] = {};
    workloads::load_mul_inputs(mem, zero, ops.y);
  } else if (name == "inv") {
    workloads::load_inv_input(mem, ops.a);
  } else if (name == "reduce") {
    Rng rng(0x2EDDCE);
    std::uint32_t wide[16];
    for (auto& w : wide) w = static_cast<std::uint32_t>(rng.next_u64());
    workloads::load_reduce_input(mem, wide);
  } else {
    ADD_FAILURE() << "no operand recipe for kernel " << name;
  }
}

/// Full observable machine state after a run.
struct Observed {
  RunStats stats;
  std::array<std::uint32_t, 13> regs{};
  std::array<bool, 4> flags{};
  std::vector<std::uint32_t> ram;
};

Observed observe(KernelMachine& m) {
  Observed o;
  o.stats = m.cpu().stats();
  for (unsigned r = 0; r < 13; ++r) o.regs[r] = m.cpu().reg(r);
  o.flags = {m.cpu().flag_n(), m.cpu().flag_z(), m.cpu().flag_c(),
             m.cpu().flag_v()};
  o.ram = m.mem().read_words(kRamBase, kRamSize / 4);
  return o;
}

TEST(Threaded, AllRegistryKernelsIdenticalAcrossThreeEngines) {
  std::uint64_t total_fused = 0;
  const auto names = KernelRegistry::instance().names();
  ASSERT_GE(names.size(), 27u);  // 12 gf2 + 15 prime built-ins
  for (const std::string& name : names) {
    std::vector<Observed> results;
    std::uint64_t fused_threaded = 0;
    for (const Cpu::DecodeMode mode : kAllModes) {
      KernelMachine m(name, mode);
      load_operands(name, m.mem());
      // Two back-to-back calls: crosses a call boundary with persistent
      // state, like the bench workloads do.
      m.call();
      // EEA scratch / in-place REDC: these consume their input state.
      if (name == "inv" || name.ends_with("-redc")) {
        load_operands(name, m.mem());
      }
      m.call();
      results.push_back(observe(m));
      if (mode == Cpu::DecodeMode::kThreaded) {
        fused_threaded = m.cpu().fused_retired();
        EXPECT_GT(m.cpu().fused_blocks_entered(), 0u) << name;
      } else {
        EXPECT_EQ(m.cpu().fused_retired(), 0u) << name;
      }
    }
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t e = 1; e < results.size(); ++e) {
      SCOPED_TRACE(name + " engine#" + std::to_string(e));
      expect_stats_identical(results[0].stats, results[e].stats);
      EXPECT_EQ(results[0].regs, results[e].regs);
      EXPECT_EQ(results[0].flags, results[e].flags);
      EXPECT_EQ(results[0].ram, results[e].ram);
    }
    EXPECT_GT(results[0].stats.instructions, 100u) << name;
    total_fused += fused_threaded;
    // The straight-line K-233 kernels must spend nearly all retirement
    // inside fused blocks.
    if (name == "mul" || name == "sqr" || name == "reduce") {
      EXPECT_GT(fused_threaded * 10, results[0].stats.instructions * 9)
          << name << " fused coverage too low: " << fused_threaded << "/"
          << results[0].stats.instructions;
    }
  }
  EXPECT_GT(total_fused, 100000u);
}

TEST(Threaded, ProtocolWorkloadsIdenticalAcrossThreeEngines) {
  // Whole protocol transactions (a complete ECDH agreement, an ECDSA
  // sign+verify) replayed as single VM runs, on both field families:
  // the three engines must agree on every stat and on the output digest.
  const std::pair<const char*, const char*> workloads[] = {
      {"ecdh", "secp192r1"},
      {"ecdsa", "sect233k1"},
      {"kp", "secp256r1"},
  };
  for (const auto& [tx, curve] : workloads) {
    SCOPED_TRACE(std::string(tx) + "-" + curve);
    const workloads::WorkloadSpec spec = workloads::make_workload(tx, curve);
    EXPECT_GT(spec.ops.mul, 100u);
    std::vector<workloads::ReplayResult> results;
    for (const Cpu::DecodeMode mode : kAllModes) {
      results.push_back(workloads::replay(spec, mode));
    }
    ASSERT_EQ(results.size(), 3u);
    EXPECT_NE(results[0].output_digest, 0u);
    for (std::size_t e = 1; e < results.size(); ++e) {
      SCOPED_TRACE("engine#" + std::to_string(e));
      expect_stats_identical(results[0].stats, results[e].stats);
      EXPECT_EQ(results[0].output_digest, results[e].output_digest);
    }
    EXPECT_EQ(results[0].fused_retired, 0u);
    EXPECT_EQ(results[1].fused_retired, 0u);
    EXPECT_GT(results[2].fused_retired, 0u);  // threaded
  }
}

TEST(Threaded, TracedStreamsIdenticalAcrossThreeEngines) {
  // With a sink attached the threaded engine must produce the same rich
  // per-instruction TraceEvent stream as both oracles (it falls back to
  // the traced per-instruction loop — fusion never changes what a
  // profiler or leakage digest observes).
  for (const std::string name : {"mul", "sqr", "inv"}) {
    std::vector<std::vector<TraceEvent>> streams;
    for (const Cpu::DecodeMode mode : kAllModes) {
      KernelMachine m(name, mode);
      RecordingSink sink;
      m.cpu().set_trace_sink(&sink);
      load_operands(name, m.mem());
      m.call();
      streams.push_back(std::move(sink.events));
    }
    ASSERT_FALSE(streams[0].empty());
    EXPECT_EQ(streams[0], streams[1]) << name;
    EXPECT_EQ(streams[0], streams[2]) << name;
  }
}

TEST(Threaded, MemoryModelsIdenticalAcrossThreeEngines) {
  // One kernel under each RAM protection model: the three engines must
  // agree bit-for-bit including the wait-state cycles (the threaded
  // engine's fused blocks cannot batch protected accesses, so it
  // delegates; the totals still have to match the per-step oracle).
  const MemModelConfig configs[] = {
      MemModelConfig::raw(),
      MemModelConfig::parity(),
      MemModelConfig::secded(2, 64),  // with live auto-scrubbing
  };
  std::array<std::uint64_t, 3> model_cycles{};
  for (std::size_t c = 0; c < 3; ++c) {
    SCOPED_TRACE(mem_model_name(configs[c].kind));
    std::vector<Observed> results;
    std::uint64_t accesses = 0, scrub_passes = 0;
    for (const Cpu::DecodeMode mode : kAllModes) {
      KernelMachine m("mul", mode, configs[c]);
      load_operands("mul", m.mem());
      m.call();
      m.call();
      results.push_back(observe(m));
      accesses = m.mem().protected_accesses();
      scrub_passes = m.mem().scrub_passes();
    }
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t e = 1; e < results.size(); ++e) {
      SCOPED_TRACE("engine#" + std::to_string(e));
      expect_stats_identical(results[0].stats, results[e].stats);
      EXPECT_EQ(results[0].regs, results[e].regs);
      EXPECT_EQ(results[0].flags, results[e].flags);
      EXPECT_EQ(results[0].ram, results[e].ram);
    }
    model_cycles[c] = results[0].stats.cycles;
    // The protection overhead is exactly accounted: every protected
    // access charges wait_states cycles and every scrub pass sweeps the
    // whole RAM, all booked under the kMemWait histogram class.
    const std::uint64_t wait_cycles =
        results[0].stats.histogram.cycles[static_cast<int>(
            costmodel::InstrClass::kMemWait)];
    if (configs[c].kind == MemModelKind::kRaw) {
      EXPECT_EQ(wait_cycles, 0u);
      EXPECT_EQ(accesses, 0u);
    } else {
      EXPECT_GT(accesses, 0u);
      EXPECT_EQ(wait_cycles,
                configs[c].wait_states * (accesses + scrub_passes * 512));
      EXPECT_EQ(model_cycles[0] + wait_cycles, model_cycles[c]);
    }
    if (configs[c].kind == MemModelKind::kSecded) {
      EXPECT_GT(scrub_passes, 0u);
    }
  }
  EXPECT_LT(model_cycles[0], model_cycles[1]);
  EXPECT_LT(model_cycles[1], model_cycles[2]);
}

TEST(Threaded, TracedStreamsIdenticalUnderProtectedMemory) {
  // A profiler attached to a SECDED machine sees one stream, whatever
  // the engine — and that stream carries the kMemWait charges.
  std::vector<std::vector<TraceEvent>> streams;
  for (const Cpu::DecodeMode mode : kAllModes) {
    KernelMachine m("mul", mode, MemModelConfig::secded(2, 64));
    RecordingSink sink;
    m.cpu().set_trace_sink(&sink);
    load_operands("mul", m.mem());
    m.call();
    streams.push_back(std::move(sink.events));
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
  bool saw_wait = false;
  for (const TraceEvent& ev : streams[0]) {
    for (unsigned i = 0; i < ev.num_costs; ++i) {
      if (ev.costs[i].cls == costmodel::InstrClass::kMemWait) saw_wait = true;
    }
  }
  EXPECT_TRUE(saw_wait);
}

/// Step a per-step context to the first retirement index >= min_index
/// at which the PC sits strictly inside a fused block of `image`.
/// Returns the snapshot there and the retirement index.
std::pair<MachineSnapshot, std::uint64_t> snapshot_inside_block(
    const ProgramRef& prog, const ThreadedImage& image, Memory& mem,
    std::uint64_t min_index) {
  Cpu cpu(prog, mem, Cpu::DecodeMode::kPerStep);
  cpu.set_reg(kLR, kReturnSentinel);
  cpu.set_reg(kPC, prog->entry("entry"));
  while (cpu.step()) {
    if (cpu.stats().instructions < min_index) continue;
    const std::uint32_t pc = cpu.reg(kPC);
    if (pc != kReturnSentinel && pc % 2 == 0 &&
        is_block_interior(image, pc / 2)) {
      return {cpu.snapshot(), cpu.stats().instructions};
    }
  }
  ADD_FAILURE() << "no interior-of-block PC reached";
  return {cpu.snapshot(), cpu.stats().instructions};
}

TEST(Threaded, SnapshotRestoreMidFusedBlockResumesIdentically) {
  const ProgramRef prog = workloads::kernel("mul");
  const ThreadedImage& image = prog->threaded();
  ASSERT_FALSE(image.blocks.empty());

  Memory scout_mem(kRamSize);
  load_operands("mul", scout_mem);
  const auto [snap, index] =
      snapshot_inside_block(prog, image, scout_mem, 500);
  ASSERT_GE(index, 500u);
  ASSERT_TRUE(is_block_interior(image, snap.arch.r[kPC] / 2));

  // Fork the checkpoint into one context per engine and run each to
  // completion: the threaded engine enters the block interior
  // per-instruction, then picks up fusion at the next head.
  std::vector<Observed> results;
  for (const Cpu::DecodeMode mode : kAllModes) {
    KernelMachine m(prog, mode);
    m.cpu().restore(snap);
    const RunStats delta = m.cpu().run();
    EXPECT_GT(delta.instructions, 0u);
    results.push_back(observe(m));
  }
  for (std::size_t e = 1; e < results.size(); ++e) {
    SCOPED_TRACE("engine#" + std::to_string(e));
    expect_stats_identical(results[0].stats, results[e].stats);
    EXPECT_EQ(results[0].regs, results[e].regs);
    EXPECT_EQ(results[0].flags, results[e].flags);
    EXPECT_EQ(results[0].ram, results[e].ram);
  }
}

TEST(Threaded, MemoryFaultInteriorToSuperinstructionIdentical) {
  // The STR below faults at retirement index 6 — interior to the single
  // fused block this straight-line body forms — so the threaded engine
  // must unwind mid-block: partial accounting replayed, flags synced,
  // PC at the faulting instruction's fallthrough, identical ArchState.
  const ProgramRef prog = assemble(R"(
entry:
    movs r0, #1
    movs r1, #2
    adds r2, r0, r1
    ldr r3, =0x30000000
    movs r4, #5
    adds r5, r4, r4
    str r4, [r3]
    adds r6, r5, r5
    eors r7, r7
    bx lr
)");
  ASSERT_TRUE(is_block_interior(prog->threaded(), prog->entry("entry") / 2 + 6))
      << "test premise: the faulting STR must sit inside a fused block";
  std::vector<std::tuple<std::string, std::uint32_t, ArchState>> faults;
  std::vector<RunStats> stats;
  for (const Cpu::DecodeMode mode : kAllModes) {
    Memory mem(kRamSize);
    Cpu cpu(prog, mem, mode);
    try {
      cpu.call(prog->entry("entry"), {});
      ADD_FAILURE() << "no fault raised";
    } catch (const BusFault& f) {
      EXPECT_TRUE(f.has_state());
      faults.emplace_back(f.message(), f.address(), f.state());
    }
    stats.push_back(cpu.stats());
  }
  ASSERT_EQ(faults.size(), 3u);
  for (std::size_t e = 1; e < faults.size(); ++e) {
    SCOPED_TRACE("engine#" + std::to_string(e));
    EXPECT_EQ(std::get<0>(faults[0]), std::get<0>(faults[e]));
    EXPECT_EQ(std::get<1>(faults[0]), std::get<1>(faults[e]));
    EXPECT_EQ(std::get<2>(faults[0]), std::get<2>(faults[e]));
    expect_stats_identical(stats[0], stats[e]);
  }
  EXPECT_EQ(std::get<1>(faults[0]), 0x30000000u);
  EXPECT_EQ(std::get<2>(faults[0]).instructions, 6u);  // STR retired nothing
  EXPECT_EQ(std::get<2>(faults[0]).r[5], 10u);         // prior work landed
}

TEST(Threaded, RegisterFlipFaultAtInteriorIndexIdentical) {
  // Snapshot the mul kernel at a retirement index whose PC is interior
  // to a superinstruction, flip an address-register bit there (the
  // faultsim register-flip model), and resume under each engine. The
  // corrupted pointer sends a later store outside the 2 KiB RAM, so
  // every engine must raise the same BusFault — message, faulting
  // address, ArchState and accounting bit-identical even though the
  // threaded engine hits it inside a fused block reached from an
  // interior (mid-block) restore point.
  const ProgramRef prog = workloads::kernel("mul");
  Memory scout_mem(kRamSize);
  load_operands("mul", scout_mem);
  const auto [snap, index] =
      snapshot_inside_block(prog, prog->threaded(), scout_mem, 200);
  ASSERT_TRUE(is_block_interior(prog->threaded(), snap.arch.r[kPC] / 2));

  std::vector<std::tuple<std::string, std::uint32_t, ArchState>> faults;
  std::vector<Observed> results;
  for (const Cpu::DecodeMode mode : kAllModes) {
    KernelMachine m(prog, mode);
    m.cpu().restore(snap);
    m.cpu().set_reg(3, m.cpu().reg(3) ^ (1u << 17));  // the injected fault
    try {
      m.cpu().run();
      ADD_FAILURE() << "corrupted pointer did not fault";
    } catch (const Fault& f) {
      ASSERT_TRUE(f.has_state());
      faults.emplace_back(f.message(), f.address(), f.state());
    }
    results.push_back(observe(m));
  }
  ASSERT_EQ(faults.size(), 3u);
  for (std::size_t e = 1; e < results.size(); ++e) {
    SCOPED_TRACE("engine#" + std::to_string(e));
    EXPECT_EQ(std::get<0>(faults[0]), std::get<0>(faults[e]));
    EXPECT_EQ(std::get<1>(faults[0]), std::get<1>(faults[e]));
    EXPECT_EQ(std::get<2>(faults[0]), std::get<2>(faults[e]));
    expect_stats_identical(results[0].stats, results[e].stats);
    EXPECT_EQ(results[0].regs, results[e].regs);
    EXPECT_EQ(results[0].ram, results[e].ram);
  }
}

TEST(Threaded, InstructionBudgetTripsIdenticallyMidBlock) {
  // A budget that expires deep inside the straight-line mul kernel —
  // i.e. at a point interior to some fused block — must trip at exactly
  // budget + 1 retirements under every engine, because the threaded
  // engine refuses to enter a block that would overrun the budget.
  const ProgramRef prog = workloads::kernel("mul");
  constexpr std::uint64_t kBudget = 1000;
  std::vector<RunStats> stats;
  std::vector<ArchState> states;
  for (const Cpu::DecodeMode mode : kAllModes) {
    KernelMachine m(prog, mode);
    load_operands("mul", m.mem());
    try {
      m.cpu().call(prog->entry("entry"), {}, kBudget);
      ADD_FAILURE() << "budget did not trip";
    } catch (const BudgetFault& f) {
      ASSERT_TRUE(f.has_state());
      states.push_back(f.state());
    }
    stats.push_back(m.cpu().stats());
  }
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(stats[0].instructions, kBudget + 1);
  for (std::size_t e = 1; e < stats.size(); ++e) {
    SCOPED_TRACE("engine#" + std::to_string(e));
    expect_stats_identical(stats[0], stats[e]);
    EXPECT_EQ(states[0], states[e]);
  }
}

TEST(Threaded, FusionDiscoveryInvariants) {
  for (const std::string name : {"mul", "sqr", "inv", "reduce"}) {
    const ProgramRef prog = workloads::kernel(name);
    const ThreadedImage& image = prog->threaded();
    SCOPED_TRACE(name);
    ASSERT_FALSE(image.blocks.empty());
    EXPECT_GT(image.valid_slots, 0u);
    EXPECT_LE(image.fused_slots, image.valid_slots);
    for (std::size_t b = 0; b < image.blocks.size(); ++b) {
      const SuperBlock& blk = image.blocks[b];
      EXPECT_GE(blk.count, kMinFuseLength);
      // `count` real instructions plus the dispatcher's terminator entry.
      ASSERT_EQ(blk.code.size(), blk.count + 1);
      EXPECT_EQ(static_cast<std::uint8_t>(blk.code.back().ins.op),
                kEndOfBlockToken);
      EXPECT_EQ(blk.code.back().num_costs, 0u);
      EXPECT_EQ(blk.end_pc, 2 * (blk.head_idx + blk.count));
      EXPECT_EQ(image.block_at[blk.head_idx], static_cast<std::int32_t>(b));
      std::uint64_t cycles = 0;
      for (std::uint32_t i = 0; i < blk.count; ++i) {
        const FusedInstr& f = blk.code[i];
        EXPECT_TRUE(fusable(f.ins, 1));
        for (unsigned c = 0; c < f.num_costs; ++c) {
          cycles += f.costs[c].cycles;
        }
      }
      // The per-instruction static costs and the batched block delta
      // are the same numbers.
      EXPECT_EQ(cycles, blk.cycles);
      std::uint64_t hist_cycles = 0;
      for (const auto& [cls, cyc] : blk.hist) hist_cycles += cyc;
      EXPECT_EQ(hist_cycles, blk.cycles);
    }
    // No label (= potential branch/call target) is interior to a block;
    // loop heads re-enter fused bodies at block heads only.
    for (const auto& [label, addr] : prog->symbols()) {
      EXPECT_FALSE(is_block_interior(image, addr / 2))
          << "label " << label << " interior to a fused block";
    }
    // The straight-line kernels fuse nearly everything.
    if (name != "inv") {
      EXPECT_GT(image.fused_slots * 10, image.valid_slots * 9);
    }
  }
}

TEST(Threaded, EngineNameHelpersRoundTrip) {
  EXPECT_EQ(decode_mode_from_name("perstep"), Cpu::DecodeMode::kPerStep);
  EXPECT_EQ(decode_mode_from_name("predecode"), Cpu::DecodeMode::kPredecode);
  EXPECT_EQ(decode_mode_from_name("threaded"), Cpu::DecodeMode::kThreaded);
  for (const Cpu::DecodeMode mode : kAllModes) {
    EXPECT_EQ(decode_mode_from_name(decode_mode_name(mode)), mode);
  }
  EXPECT_THROW(decode_mode_from_name("jit"), std::invalid_argument);
  // Just exercise the probe; either dispatch form is valid here.
  (void)threaded_dispatch_uses_computed_goto();
}

}  // namespace
}  // namespace eccm0::armvm
