// The typed armvm::Fault hierarchy: every architectural error is a Fault
// with the right kind/address, still catchable as the std exception type
// (and what() text) the pre-typed implementation threw.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "armvm/codec.h"
#include "armvm/cpu.h"
#include "armvm/fault.h"

namespace eccm0::armvm {
namespace {

TEST(Fault, MemoryOutOfRangeIsBusFaultAndOutOfRange) {
  Memory mem(0x100);
  const std::uint32_t addr = kRamBase + 0x200;
  bool typed = false, legacy = false;
  try {
    (void)mem.load32(addr);
  } catch (const BusFault& f) {
    typed = true;
    EXPECT_EQ(f.kind(), FaultKind::kBusFault);
    EXPECT_EQ(f.address(), addr);
    EXPECT_EQ(f.message(),
              "Memory: access outside RAM at " + std::to_string(addr));
    EXPECT_STREQ(f.what(), f.message().c_str());
    // A bare Memory has no Cpu to annotate architectural state.
    EXPECT_FALSE(f.has_state());
  }
  try {
    mem.store8(addr, 0xAA);
  } catch (const std::out_of_range&) {
    legacy = true;  // old catch clauses keep matching
  }
  EXPECT_TRUE(typed);
  EXPECT_TRUE(legacy);
}

TEST(Fault, UnalignedAccessIsAlignmentFaultAndRuntimeError) {
  Memory mem(0x100);
  try {
    (void)mem.load16(kRamBase + 1);
    FAIL() << "expected AlignmentFault";
  } catch (const AlignmentFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kAlignmentFault);
    EXPECT_EQ(f.address(), kRamBase + 1);
    EXPECT_EQ(f.message(), "Memory: unaligned halfword load");
  }
  EXPECT_THROW((void)mem.load32(kRamBase + 2), std::runtime_error);
  EXPECT_THROW(mem.store16(kRamBase + 1, 1), std::runtime_error);
  EXPECT_THROW(mem.store32(kRamBase + 2, 1), std::runtime_error);
}

TEST(Fault, UndefinedEncodingIsDecodeFaultWithByteAddress) {
  const std::vector<std::uint16_t> code = {0x2007, 0xBA80};
  try {
    (void)decode(code, 1);
    FAIL() << "expected DecodeFault";
  } catch (const DecodeFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kDecodeFault);
    EXPECT_EQ(f.address(), 2u);  // byte address of the bad halfword
    EXPECT_EQ(f.message(), "decode: 0xBA80 undefined");
  }
  // Legacy contract: still a std::invalid_argument.
  EXPECT_THROW((void)decode(code, 1), std::invalid_argument);
}

TEST(Fault, TruncatedBlPairIsDecodeFaultNotRawOutOfRange) {
  const std::vector<std::uint16_t> code = {0xF000};  // BL high half only
  try {
    (void)decode(code, 0);
    FAIL() << "expected DecodeFault";
  } catch (const DecodeFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kDecodeFault);
    EXPECT_EQ(f.message(), "decode: BL pair truncated");
  }
}

TEST(Fault, CpuFaultsCarryArchitecturalState) {
  // Entering at an odd PC faults before anything retires; the snapshot
  // must show exactly the state call() set up.
  Memory mem(0x100);
  const std::vector<std::uint16_t> code = {0x2007};  // movs r0, #7
  Cpu cpu(code, mem);
  try {
    cpu.call(1, {});  // odd entry PC
    FAIL() << "expected AlignmentFault";
  } catch (const AlignmentFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kAlignmentFault);
    EXPECT_EQ(f.message(), "Cpu: odd PC");
    EXPECT_EQ(f.address(), 1u);
    ASSERT_TRUE(f.has_state());
    EXPECT_EQ(f.state().r[15], 1u);
    EXPECT_EQ(f.state(), cpu.arch_state());
  }
}

TEST(Fault, PcOutsideCodeIsBusFaultWithState) {
  Memory mem(0x100);
  const std::vector<std::uint16_t> code = {0x2007};
  Cpu cpu(code, mem);
  try {
    cpu.call(0x40, {});
    FAIL() << "expected BusFault";
  } catch (const BusFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kBusFault);
    EXPECT_EQ(f.message(), "Cpu: PC outside code");
    EXPECT_TRUE(f.has_state());
  }
}

TEST(Fault, BudgetExhaustionIsBudgetFaultWithState) {
  Memory mem(0x100);
  const std::vector<std::uint16_t> code = {0xE7FE};  // b . (self-loop)
  Cpu cpu(code, mem);
  try {
    cpu.call(0, {}, 100);
    FAIL() << "expected BudgetFault";
  } catch (const BudgetFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kBudgetExhausted);
    EXPECT_EQ(f.message(), "Cpu::call: instruction budget exceeded");
    ASSERT_TRUE(f.has_state());
    EXPECT_EQ(f.state().instructions, 101u);  // budget + 1, as before
  }
  // Legacy contract preserved.
  Cpu again(code, mem);
  EXPECT_THROW(again.call(0, {}, 100), std::runtime_error);
}

TEST(Fault, CatchAsBaseFaultClassifiesAllKinds) {
  Memory mem(0x100);
  int caught = 0;
  try {
    (void)mem.load32(0);
  } catch (const Fault& f) {
    ++caught;
    EXPECT_EQ(f.kind(), FaultKind::kBusFault);
  }
  try {
    (void)mem.load16(kRamBase + 1);
  } catch (const Fault& f) {
    ++caught;
    EXPECT_EQ(f.kind(), FaultKind::kAlignmentFault);
  }
  EXPECT_EQ(caught, 2);
}

TEST(Fault, FirstStateAnnotationWins) {
  BusFault f("test", 0);
  ArchState first;
  first.r[0] = 111;
  ArchState second;
  second.r[0] = 222;
  f.attach_state(first);
  f.attach_state(second);  // must not overwrite
  EXPECT_EQ(f.state().r[0], 111u);
}

TEST(Fault, KindNames) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kBusFault), "bus-fault");
  EXPECT_STREQ(fault_kind_name(FaultKind::kAlignmentFault),
               "alignment-fault");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDecodeFault), "decode-fault");
  EXPECT_STREQ(fault_kind_name(FaultKind::kBudgetExhausted),
               "budget-exhausted");
}

}  // namespace
}  // namespace eccm0::armvm
