// Property-style differential tests of the interpreter's arithmetic and
// flag semantics: for randomly generated operand pairs, the VM's results
// and NZCV flags must match a host-side reference implementation of the
// ARMv6-M pseudocode.
#include <gtest/gtest.h>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "common/rng.h"

namespace eccm0::armvm {
namespace {

struct Flags {
  bool n, z, c, v;
  friend bool operator==(const Flags&, const Flags&) = default;
};

struct RefResult {
  std::uint32_t value;
  Flags f;
};

RefResult ref_add_with_carry(std::uint32_t a, std::uint32_t b, bool cin) {
  const std::uint64_t wide = std::uint64_t{a} + b + (cin ? 1 : 0);
  const auto r = static_cast<std::uint32_t>(wide);
  Flags f{};
  f.n = (r >> 31) != 0;
  f.z = r == 0;
  f.c = (wide >> 32) != 0;
  f.v = (~(a ^ b) & (a ^ r) & 0x80000000u) != 0;
  return {r, f};
}

class Harness {
 public:
  explicit Harness(const std::string& body)
      : prog_(assemble("fn:\n" + body + "    bx lr\n")),
        mem_(1 << 12),
        cpu_(prog_, mem_) {}

  RefResult run(std::uint32_t r0, std::uint32_t r1, bool carry_in = false) {
    cpu_.set_reg(0, r0);
    cpu_.set_reg(1, r1);
    if (carry_in) {
      // Set C by running "cmp r2, r2" style trick: instead, seed via a
      // shift: place value 3 in r2 and LSR by 1 -> C=1. We bake it in by
      // running a priming instruction sequence in the harness body
      // instead; tests needing carry use bodies that set it.
    }
    (void)cpu_.call(prog_->entry("fn"), {});
    return {cpu_.reg(0),
            {cpu_.flag_n(), cpu_.flag_z(), cpu_.flag_c(), cpu_.flag_v()}};
  }

 private:
  ProgramRef prog_;
  Memory mem_;
  Cpu cpu_;
};

TEST(Semantics, AddsMatchesReference) {
  Harness h("    adds r0, r0, r1\n");
  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64());
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    const RefResult want = ref_add_with_carry(a, b, false);
    const RefResult got = h.run(a, b);
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.f, want.f) << a << "+" << b;
  }
}

TEST(Semantics, SubsMatchesReference) {
  Harness h("    subs r0, r0, r1\n");
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64());
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    const RefResult want = ref_add_with_carry(a, ~b, true);
    const RefResult got = h.run(a, b);
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.f, want.f);
  }
}

TEST(Semantics, AdcsChainMatches64BitAddition) {
  // (r0:r1) treated as 64-bit halves added to themselves via adds/adcs.
  Harness h("    adds r0, r0, r0\n    adcs r1, r1\n");
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_u64();
    const auto lo = static_cast<std::uint32_t>(x);
    const auto hi = static_cast<std::uint32_t>(x >> 32);
    Harness h2("    adds r0, r0, r0\n    adcs r1, r1\n");
    h2.run(lo, hi);
    // reconstruct from registers via a second harness run returning r1.
    Harness h3("    adds r0, r0, r0\n    adcs r1, r1\n    movs r0, r1\n");
    const auto hi_got = h3.run(lo, hi).value;
    const auto lo_got = h2.run(lo, hi).value;
    const std::uint64_t got =
        (std::uint64_t{hi_got} << 32) | lo_got;
    EXPECT_EQ(got, x + x);
  }
}

TEST(Semantics, ShiftImmediatesMatchReference) {
  Rng rng(4);
  for (unsigned sh : {1u, 7u, 16u, 31u}) {
    Harness lsl("    lsls r0, r0, #" + std::to_string(sh) + "\n");
    Harness lsr("    lsrs r0, r0, #" + std::to_string(sh) + "\n");
    Harness asr("    asrs r0, r0, #" + std::to_string(sh) + "\n");
    for (int i = 0; i < 50; ++i) {
      const auto v = static_cast<std::uint32_t>(rng.next_u64());
      auto got = lsl.run(v, 0);
      EXPECT_EQ(got.value, v << sh);
      EXPECT_EQ(got.f.c, ((v >> (32 - sh)) & 1) != 0);
      got = lsr.run(v, 0);
      EXPECT_EQ(got.value, v >> sh);
      EXPECT_EQ(got.f.c, ((v >> (sh - 1)) & 1) != 0);
      got = asr.run(v, 0);
      EXPECT_EQ(got.value, static_cast<std::uint32_t>(
                               static_cast<std::int32_t>(v) >> sh));
    }
  }
}

TEST(Semantics, RegisterShiftBoundaryAmounts) {
  // Amounts 0, 31, 32, 33, 255 follow the ARMv6-M pseudocode.
  Harness lsl("    lsls r0, r1\n");
  Harness lsr("    lsrs r0, r1\n");
  const std::uint32_t v = 0x80000001u;
  EXPECT_EQ(lsl.run(v, 0).value, v);        // no shift, flags NZ only
  EXPECT_EQ(lsl.run(v, 31).value, 0x80000000u);
  auto got = lsl.run(v, 32);
  EXPECT_EQ(got.value, 0u);
  EXPECT_TRUE(got.f.c);  // last bit out = bit 0 = 1
  got = lsl.run(v, 33);
  EXPECT_EQ(got.value, 0u);
  EXPECT_FALSE(got.f.c);
  got = lsr.run(v, 32);
  EXPECT_EQ(got.value, 0u);
  EXPECT_TRUE(got.f.c);  // bit 31
  EXPECT_EQ(lsr.run(v, 255).value, 0u);
}

TEST(Semantics, MulsTruncatesTo32Bits) {
  Harness h("    muls r0, r1\n");
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64());
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    const auto got = h.run(a, b);
    EXPECT_EQ(got.value, a * b);
    EXPECT_EQ(got.f.n, (a * b) >> 31 != 0);
    EXPECT_EQ(got.f.z, a * b == 0);
  }
}

TEST(Semantics, LogicalOpsMatchReference) {
  Harness andh("    ands r0, r1\n");
  Harness orrh("    orrs r0, r1\n");
  Harness eorh("    eors r0, r1\n");
  Harness bich("    bics r0, r1\n");
  Harness mvnh("    mvns r0, r1\n");
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64());
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    EXPECT_EQ(andh.run(a, b).value, a & b);
    EXPECT_EQ(orrh.run(a, b).value, a | b);
    EXPECT_EQ(eorh.run(a, b).value, a ^ b);
    EXPECT_EQ(bich.run(a, b).value, a & ~b);
    EXPECT_EQ(mvnh.run(a, b).value, ~b);
  }
}

TEST(Semantics, CmpConditionMatrix) {
  // For random pairs, each condition code must agree with the host's
  // signed/unsigned comparisons.
  // MOVS/ADDS clobber the flags, so each predicate re-compares.
  const std::string body = R"(
    mov r3, r0
    movs r0, #0
    cmp r3, r1
    bls n1
    adds r0, #1
n1: cmp r3, r1
    bge n2
    adds r0, #2
n2: cmp r3, r1
    bne n3
    adds r0, #4
n3: cmp r3, r1
    blt n4
    adds r0, #8
n4: nop
)";
  Harness h(body);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_u64());
    const auto b =
        rng.next_below(4) == 0 ? a : static_cast<std::uint32_t>(rng.next_u64());
    const std::uint32_t mask = h.run(a, b).value;
    EXPECT_EQ((mask & 1) != 0, a > b) << "hi";                    // unsigned >
    EXPECT_EQ((mask & 2) != 0,
              static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b))
        << "lt";
    EXPECT_EQ((mask & 4) != 0, a == b) << "eq";
    EXPECT_EQ((mask & 8) != 0,
              static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b))
        << "ge";
  }
}

TEST(Semantics, ExtendAndReverseOps) {
  Harness sxtb("    sxtb r0, r1\n");
  Harness sxth("    sxth r0, r1\n");
  Harness uxtb("    uxtb r0, r1\n");
  Harness uxth("    uxth r0, r1\n");
  Harness rev("    rev r0, r1\n");
  Harness rev16("    rev16 r0, r1\n");
  Harness revsh("    revsh r0, r1\n");
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto v = static_cast<std::uint32_t>(rng.next_u64());
    EXPECT_EQ(sxtb.run(0, v).value,
              static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(static_cast<std::int8_t>(v))));
    EXPECT_EQ(sxth.run(0, v).value,
              static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(static_cast<std::int16_t>(v))));
    EXPECT_EQ(uxtb.run(0, v).value, v & 0xFFu);
    EXPECT_EQ(uxth.run(0, v).value, v & 0xFFFFu);
    EXPECT_EQ(rev.run(0, v).value, ((v >> 24) & 0xFF) | ((v >> 8) & 0xFF00) |
                                       ((v << 8) & 0xFF0000) | (v << 24));
    EXPECT_EQ(rev16.run(0, v).value,
              ((v >> 8) & 0x00FF00FFu) | ((v << 8) & 0xFF00FF00u));
    const std::uint16_t swapped = static_cast<std::uint16_t>(
        ((v >> 8) & 0xFFu) | ((v & 0xFFu) << 8));
    EXPECT_EQ(revsh.run(0, v).value,
              static_cast<std::uint32_t>(static_cast<std::int32_t>(
                  static_cast<std::int16_t>(swapped))));
  }
}

}  // namespace
}  // namespace eccm0::armvm
