// Unit and property tests for the F(2^233) kernel: every optimised routine
// is checked against the bit-serial / Poly oracles and against field axioms.
#include "gf2/k233.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf2/poly.h"

namespace eccm0::gf2::k233 {
namespace {

Fe random_fe(Rng& rng) {
  Fe f;
  rng.fill(f);
  f[7] &= kTopMask;
  return f;
}

Poly to_poly(const Fe& f) {
  return Poly{std::vector<Word>(f.begin(), f.end())};
}

Poly to_poly(const Prod& p) {
  return Poly{std::vector<Word>(p.begin(), p.end())};
}

Poly f_poly() {
  return Poly::from_exponents(std::array<unsigned, 3>{233, 74, 0});
}

TEST(K233, ModulusWords) {
  const Fe f = modulus();
  EXPECT_EQ(to_poly(f), f_poly());
  EXPECT_EQ(degree(f), 233);
}

TEST(K233, AddIsXorAndInvolutive) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    EXPECT_EQ(add(a, b), add(b, a));
    EXPECT_EQ(add(add(a, b), b), a);
    EXPECT_TRUE(is_zero(add(a, a)));
  }
}

TEST(K233, MulShiftAddMatchesPolyOracle) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    Prod v;
    mul_shift_add(v, a, b);
    EXPECT_EQ(to_poly(v), Poly::mul(to_poly(a), to_poly(b)));
  }
}

TEST(K233, MulLdMatchesShiftAdd) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    Prod u, v;
    mul_shift_add(u, a, b);
    mul_ld(v, a, b);
    EXPECT_EQ(u, v);
  }
}

TEST(K233, MulKaratsubaMatchesShiftAdd) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    Prod u, v;
    mul_shift_add(u, a, b);
    mul_karatsuba(v, a, b);
    EXPECT_EQ(u, v);
  }
}

TEST(K233, MulEdgeCases) {
  const Fe z = zero();
  const Fe o = one();
  Fe top{};
  top[7] = 1u << 8;  // z^232
  for (const Fe& a : {z, o, top, modulus()}) {
    Prod u, v, w;
    mul_shift_add(u, a, top);
    mul_ld(v, a, top);
    mul_karatsuba(w, a, top);
    EXPECT_EQ(u, v);
    EXPECT_EQ(u, w);
  }
}

TEST(K233, ReduceMatchesPolyMod) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Prod p;
    rng.fill(p);
    // Raw products have degree <= 464; clear the top bits accordingly.
    p[15] = 0;
    p[14] &= (1u << 17) - 1;
    Fe r;
    reduce(r, p);
    EXPECT_EQ(to_poly(r), Poly::mod(to_poly(p), f_poly()));
    EXPECT_LT(degree(r), 233);
  }
}

TEST(K233, ReduceOfReducedIsIdentity) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const Fe a = random_fe(rng);
    Prod p{};
    for (std::size_t w = 0; w < kWords; ++w) p[w] = a[w];
    Fe r;
    reduce(r, p);
    EXPECT_EQ(r, a);
  }
}

TEST(K233, SqrExpandSpreadsBits) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Fe a = random_fe(rng);
    Prod v;
    sqr_expand(v, a);
    EXPECT_EQ(to_poly(v), Poly::mul(to_poly(a), to_poly(a)));
  }
}

TEST(K233, SqrMatchesMul) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const Fe a = random_fe(rng);
    Fe s;
    sqr(s, a);
    EXPECT_EQ(s, mul(a, a));
  }
}

TEST(K233, MulModularProperties) {
  Rng rng(9);
  const Fe o = one();
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    const Fe c = random_fe(rng);
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(a, o), a);
    EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
    // distributivity
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

TEST(K233, InverseRoundTrip) {
  Rng rng(10);
  for (int i = 0; i < 50; ++i) {
    Fe a = random_fe(rng);
    if (is_zero(a)) a = one();
    const Fe ai = inv(a);
    EXPECT_EQ(mul(a, ai), one());
    EXPECT_EQ(inv(ai), a);
  }
}

TEST(K233, InverseOfOne) { EXPECT_EQ(inv(one()), one()); }

TEST(K233, ItohTsujiiMatchesEea) {
  Rng rng(20);
  for (int i = 0; i < 30; ++i) {
    Fe a = random_fe(rng);
    if (is_zero(a)) a = one();
    EXPECT_EQ(inv_itoh_tsujii(a), inv(a));
  }
  EXPECT_EQ(inv_itoh_tsujii(one()), one());
}

TEST(K233, DivMulRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    Fe a = random_fe(rng);
    Fe b = random_fe(rng);
    if (is_zero(b)) b = one();
    EXPECT_EQ(mul(div(a, b), b), a);
  }
}

TEST(K233, FrobeniusLinearity) {
  // (a + b)^2 = a^2 + b^2 in characteristic 2.
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    Fe sa, sb, sab;
    sqr(sa, a);
    sqr(sb, b);
    sqr(sab, add(a, b));
    EXPECT_EQ(sab, add(sa, sb));
  }
}

TEST(K233, FermatInverse) {
  // a^(2^233 - 2) == a^-1: check via 232 squarings chain a^(2^233-2) =
  // prod of squarings — use the identity a * a^(2^233-2) = a^(2^233-1) = 1.
  Rng rng(13);
  Fe a = random_fe(rng);
  if (is_zero(a)) a = one();
  // compute a^(2^233-1) by Fermat: itoh-tsujii style plain chain
  Fe acc = a;
  for (int i = 0; i < 232; ++i) {
    Fe s;
    sqr(s, acc);
    acc = mul(s, a);
  }
  EXPECT_EQ(acc, one());  // a^(2^233 - 1) = 1 for a != 0
}

}  // namespace
}  // namespace eccm0::gf2::k233
