// Generic-field tests, parameterized over all supported fields so every
// property is exercised on the fast K-233 path and the generic path alike.
#include "gf2/field.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf2/poly.h"

namespace eccm0::gf2 {
namespace {

class FieldTest : public ::testing::TestWithParam<const GF2Field*> {
 protected:
  const GF2Field& f() const { return *GetParam(); }
};

TEST_P(FieldTest, Basics) {
  EXPECT_TRUE(GF2Field::is_zero(f().zero()));
  EXPECT_FALSE(GF2Field::is_zero(f().one()));
  EXPECT_EQ(f().words(), words_for_bits(f().m()));
}

TEST_P(FieldTest, RandomElementsFitTheField) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Elem a = f().random(rng);
    EXPECT_LT(poly_degree(std::span<const Word>(a)),
              static_cast<int>(f().m()));
  }
}

TEST_P(FieldTest, AdditionLaws) {
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    const Elem a = f().random(rng);
    const Elem b = f().random(rng);
    EXPECT_EQ(f().add(a, b), f().add(b, a));
    EXPECT_TRUE(GF2Field::is_zero(f().add(a, a)));
    EXPECT_EQ(f().add(a, f().zero()), a);
  }
}

TEST_P(FieldTest, MulMatchesPolyOracle) {
  Rng rng(3);
  const Poly mod = Poly::from_exponents(f().modulus_terms());
  for (int i = 0; i < 30; ++i) {
    const Elem a = f().random(rng);
    const Elem b = f().random(rng);
    const Elem c = f().mul(a, b);
    EXPECT_EQ(f().to_poly(c),
              Poly::mulmod(f().to_poly(a), f().to_poly(b), mod));
  }
}

TEST_P(FieldTest, MulRingLaws) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Elem a = f().random(rng);
    const Elem b = f().random(rng);
    const Elem c = f().random(rng);
    EXPECT_EQ(f().mul(a, b), f().mul(b, a));
    EXPECT_EQ(f().mul(a, f().one()), a);
    EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
    EXPECT_EQ(f().mul(a, f().add(b, c)),
              f().add(f().mul(a, b), f().mul(a, c)));
  }
}

TEST_P(FieldTest, SqrMatchesMul) {
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const Elem a = f().random(rng);
    EXPECT_EQ(f().sqr(a), f().mul(a, a));
  }
}

TEST_P(FieldTest, InverseRoundTrip) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Elem a = f().random(rng);
    if (GF2Field::is_zero(a)) a = f().one();
    EXPECT_EQ(f().mul(a, f().inv(a)), f().one());
  }
}

TEST_P(FieldTest, SqrtInvertsSquaring) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const Elem a = f().random(rng);
    EXPECT_EQ(f().sqrt(f().sqr(a)), a);
    EXPECT_EQ(f().sqr(f().sqrt(a)), a);
  }
}

TEST_P(FieldTest, TraceIsAdditive) {
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    const Elem a = f().random(rng);
    const Elem b = f().random(rng);
    EXPECT_EQ(f().trace(f().add(a, b)), f().trace(a) ^ f().trace(b));
    // Tr(a^2) = Tr(a)
    EXPECT_EQ(f().trace(f().sqr(a)), f().trace(a));
  }
}

TEST_P(FieldTest, HalfTraceSolvesQuadratic) {
  // If Tr(c) = 0 then z = H(c) solves z^2 + z = c (m odd).
  Rng rng(9);
  int solved = 0;
  for (int i = 0; i < 10; ++i) {
    const Elem c = f().random(rng);
    if (f().trace(c) != 0) continue;
    const Elem z = f().half_trace(c);
    EXPECT_EQ(f().add(f().sqr(z), z), c);
    ++solved;
  }
  EXPECT_GT(solved, 0);  // about half of random elements have trace 0
}

TEST_P(FieldTest, FrobIsRepeatedSquaring) {
  Rng rng(10);
  const Elem a = f().random(rng);
  EXPECT_EQ(f().frob(a, 0), a);
  EXPECT_EQ(f().frob(a, 1), f().sqr(a));
  EXPECT_EQ(f().frob(a, 3), f().sqr(f().sqr(f().sqr(a))));
  // a^(2^m) = a
  EXPECT_EQ(f().frob(a, f().m()), a);
}

TEST_P(FieldTest, HexRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const Elem a = f().random(rng);
    EXPECT_EQ(f().from_hex(f().to_hex(a)), a);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFields, FieldTest,
                         ::testing::Values(&GF2Field::f233(),
                                           &GF2Field::f163(),
                                           &GF2Field::f283(),
                                           &GF2Field::f409()),
                         [](const auto& info) {
                           switch (info.index) {
                             case 0: return "F233";
                             case 1: return "F163";
                             case 2: return "F283";
                             default: return "F409";
                           }
                         });

TEST(GF2FieldConstruction, RejectsBadModulus) {
  EXPECT_THROW(GF2Field({233, {74, 0}, "bad"}), std::invalid_argument);
  EXPECT_THROW(GF2Field({64, {64, 1, 0}, "word-aligned"}),
               std::invalid_argument);
  EXPECT_THROW(GF2Field({233, {233, 230, 0}, "tail too high"}),
               std::invalid_argument);
  EXPECT_THROW(GF2Field({433, {433, 87, 0}, "too big"}),
               std::invalid_argument);
}

TEST(GF2FieldDispatch, FastPathAgreesWithGenericPath) {
  // Build a *generic* F(2^233) by disguising the name — same modulus, but
  // construction goes through the same dispatch; verify against the Poly
  // oracle path via f163's generic machinery instead: simply cross-check
  // fast f233 mul against the Poly oracle (already done) and against
  // shifted operands near the top boundary.
  const GF2Field& f = GF2Field::f233();
  const Elem x232 = f.from_poly(Poly::monomial(232));
  const Elem z = f.mul(x232, f.from_poly(Poly::monomial(1)));
  // x^233 = x^74 + 1 mod f
  EXPECT_EQ(f.to_poly(z), Poly::monomial(74) ^ Poly::one());
}

}  // namespace
}  // namespace eccm0::gf2
