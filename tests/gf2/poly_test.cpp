#include "gf2/poly.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::gf2 {
namespace {

Poly random_poly(Rng& rng, std::size_t max_words) {
  std::vector<Word> w(1 + rng.next_below(max_words));
  rng.fill(w);
  return Poly{std::move(w)};
}

TEST(Poly, ZeroAndOne) {
  EXPECT_TRUE(Poly::zero().is_zero());
  EXPECT_EQ(Poly::one().degree(), 0);
  EXPECT_EQ(Poly::zero().degree(), -1);
}

TEST(Poly, MonomialDegree) {
  for (std::size_t e : {0u, 1u, 31u, 32u, 74u, 233u}) {
    EXPECT_EQ(Poly::monomial(e).degree(), static_cast<int>(e));
  }
}

TEST(Poly, FromExponents) {
  const std::array<unsigned, 3> exps{233, 74, 0};
  const Poly f = Poly::from_exponents(exps);
  EXPECT_TRUE(f.bit(0));
  EXPECT_TRUE(f.bit(74));
  EXPECT_TRUE(f.bit(233));
  EXPECT_FALSE(f.bit(1));
  EXPECT_EQ(f.degree(), 233);
}

TEST(Poly, HexRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Poly p = random_poly(rng, 8);
    EXPECT_EQ(Poly::from_hex(p.to_hex()), p);
  }
}

TEST(Poly, XorGroupLaws) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Poly a = random_poly(rng, 5);
    const Poly b = random_poly(rng, 5);
    EXPECT_EQ(a ^ b, b ^ a);
    EXPECT_EQ((a ^ b) ^ b, a);
    EXPECT_TRUE((a ^ a).is_zero());
  }
}

TEST(Poly, ShiftRoundTrip) {
  Rng rng(3);
  for (std::size_t bits : {1u, 4u, 31u, 32u, 33u, 97u}) {
    const Poly p = random_poly(rng, 4);
    EXPECT_EQ(p.shifted_left(bits).shifted_right(bits), p);
    if (!p.is_zero()) {
      EXPECT_EQ(p.shifted_left(bits).degree(),
                p.degree() + static_cast<int>(bits));
    }
  }
}

TEST(Poly, MulDegreeAndCommutativity) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Poly a = random_poly(rng, 4);
    const Poly b = random_poly(rng, 4);
    const Poly ab = Poly::mul(a, b);
    EXPECT_EQ(ab, Poly::mul(b, a));
    if (!a.is_zero() && !b.is_zero()) {
      EXPECT_EQ(ab.degree(), a.degree() + b.degree());
    }
  }
}

TEST(Poly, MulDistributesOverXor) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Poly a = random_poly(rng, 3);
    const Poly b = random_poly(rng, 3);
    const Poly c = random_poly(rng, 3);
    EXPECT_EQ(Poly::mul(a, b ^ c), Poly::mul(a, b) ^ Poly::mul(a, c));
  }
}

TEST(Poly, ModProperties) {
  Rng rng(6);
  const Poly f = Poly::from_exponents(std::array<unsigned, 3>{233, 74, 0});
  for (int i = 0; i < 20; ++i) {
    const Poly a = random_poly(rng, 15);
    const Poly r = Poly::mod(a, f);
    EXPECT_LT(r.degree(), f.degree());
    // a = q*f + r  =>  a ^ r is divisible by f.
    EXPECT_TRUE(Poly::mod(a ^ r, f).is_zero());
  }
}

TEST(Poly, ModByZeroThrows) {
  EXPECT_THROW(Poly::mod(Poly::one(), Poly::zero()), std::domain_error);
}

TEST(Poly, SqrHasSpreadBits) {
  Rng rng(7);
  const Poly p = random_poly(rng, 3);
  const Poly s = Poly::sqr(p);
  for (int i = 0; i <= p.degree(); ++i) {
    EXPECT_EQ(s.bit(2 * static_cast<std::size_t>(i)),
              p.bit(static_cast<std::size_t>(i)));
  }
}

TEST(Poly, GcdOfMultiples) {
  Rng rng(8);
  const Poly g = random_poly(rng, 2) ^ Poly::one();  // ensure non-zero
  const Poly a = Poly::mul(g, random_poly(rng, 2) ^ Poly::monomial(40));
  const Poly b = Poly::mul(g, random_poly(rng, 2) ^ Poly::monomial(41));
  // gcd divides both products
  const Poly d = Poly::gcd(a, b);
  EXPECT_TRUE(Poly::mod(a, d).is_zero());
  EXPECT_TRUE(Poly::mod(b, d).is_zero());
  EXPECT_TRUE(Poly::mod(d, g).is_zero() || d.degree() >= g.degree());
}

TEST(Poly, InvModIrreducible) {
  Rng rng(9);
  const Poly f = Poly::from_exponents(std::array<unsigned, 3>{233, 74, 0});
  for (int i = 0; i < 10; ++i) {
    Poly a = random_poly(rng, 7);
    if (a.is_zero()) a = Poly::one();
    const Poly ai = Poly::inv_mod(a, f);
    EXPECT_EQ(Poly::mulmod(a, ai, f), Poly::one());
  }
}

TEST(Poly, InvModZeroThrows) {
  const Poly f =
      Poly::from_exponents(std::array<unsigned, 5>{163, 7, 6, 3, 0});
  EXPECT_THROW(Poly::inv_mod(Poly::zero(), f), std::domain_error);
}

}  // namespace
}  // namespace eccm0::gf2
