// The traced multipliers must (1) compute correct products and (2) show
// the paper's memory-traffic ordering: fixed < rotating < plain, with
// measured counts near the Table 1 / Table 2 closed forms.
#include "gf2/traced.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf2/k233.h"
#include "gf2/poly.h"

namespace eccm0::gf2::traced {
namespace {

using costmodel::CycleModel;
using costmodel::OpCounts;
using costmodel::OpRecorder;

std::vector<Word> random_words(Rng& rng, std::size_t n, unsigned top_mask) {
  std::vector<Word> w(n);
  rng.fill(w);
  w[n - 1] &= top_mask;
  return w;
}

using TracedMul = void (*)(std::span<Word>, std::span<const Word>,
                           std::span<const Word>, OpRecorder&);

struct MethodCase {
  const char* name;
  TracedMul fn;
  OpCounts (*paper)(std::uint64_t);
};

class TracedMulTest : public ::testing::TestWithParam<MethodCase> {};

TEST_P(TracedMulTest, ProductMatchesOracleAcrossSizes) {
  Rng rng(1);
  for (std::size_t n : {2u, 4u, 8u, 9u}) {
    for (int i = 0; i < 10; ++i) {
      const auto x = random_words(rng, n, 0x1FF);
      const auto y = random_words(rng, n, 0x1FF);
      std::vector<Word> v(2 * n);
      OpRecorder rec;
      GetParam().fn(v, x, y, rec);
      const Poly expect = Poly::mul(Poly{x}, Poly{y});
      EXPECT_EQ(Poly{v}, expect) << GetParam().name << " n=" << n;
    }
  }
}

TEST_P(TracedMulTest, ZeroAndOneOperands) {
  const std::size_t n = 8;
  std::vector<Word> zero(n, 0), one(n, 0), v(2 * n);
  one[0] = 1;
  Rng rng(2);
  const auto x = random_words(rng, n, 0x1FF);
  OpRecorder rec;
  GetParam().fn(v, x, zero, rec);
  EXPECT_TRUE(Poly{v}.is_zero());
  GetParam().fn(v, x, one, rec);
  EXPECT_EQ(Poly{v}, Poly{x});
  GetParam().fn(v, zero, x, rec);
  EXPECT_TRUE(Poly{v}.is_zero());
}

TEST_P(TracedMulTest, MeasuredCountsNearPaperFormula) {
  // Measured abstract-op counts should track the paper's closed forms
  // within 25% on every column that dominates cost (reads, writes, xors).
  const std::size_t n = 8;
  Rng rng(3);
  const auto x = random_words(rng, n, 0x1FF);
  const auto y = random_words(rng, n, 0x1FF);
  std::vector<Word> v(2 * n);
  OpRecorder rec;
  GetParam().fn(v, x, y, rec);
  const OpCounts paper = GetParam().paper(n);
  const OpCounts got = rec.counts();
  auto near = [](std::uint64_t got, std::uint64_t want, double tol) {
    const double g = static_cast<double>(got);
    const double w = static_cast<double>(want);
    return g >= w * (1.0 - tol) && g <= w * (1.0 + tol);
  };
  EXPECT_TRUE(near(got.mem_read, paper.mem_read, 0.25))
      << GetParam().name << " reads " << got.mem_read << " vs "
      << paper.mem_read;
  EXPECT_TRUE(near(got.mem_write, paper.mem_write, 0.25))
      << GetParam().name << " writes " << got.mem_write << " vs "
      << paper.mem_write;
  EXPECT_TRUE(near(got.xor_ops, paper.xor_ops, 0.25))
      << GetParam().name << " xors " << got.xor_ops << " vs "
      << paper.xor_ops;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, TracedMulTest,
    ::testing::Values(MethodCase{"plain", &mul_ld_plain, &paper_ld_plain},
                      MethodCase{"rotating", &mul_ld_rotating,
                                 &paper_ld_rotating},
                      MethodCase{"fixed", &mul_ld_fixed, &paper_ld_fixed}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(TracedOrdering, FixedBeatsRotatingBeatsPlain) {
  const std::size_t n = 8;
  Rng rng(4);
  const auto x = random_words(rng, n, 0x1FF);
  const auto y = random_words(rng, n, 0x1FF);
  std::vector<Word> v(2 * n);
  OpRecorder ra, rb, rc;
  mul_ld_plain(v, x, y, ra);
  mul_ld_rotating(v, x, y, rb);
  mul_ld_fixed(v, x, y, rc);
  const CycleModel model;
  const auto ca = model.cycles(ra.counts());
  const auto cb = model.cycles(rb.counts());
  const auto cc = model.cycles(rc.counts());
  // The paper's headline ordering (Table 2): C < B < A.
  EXPECT_LT(cc, cb);
  EXPECT_LT(cb, ca);
  // Memory-op ordering is the mechanism.
  EXPECT_LT(rc.counts().memory_ops(), rb.counts().memory_ops());
  EXPECT_LT(rb.counts().memory_ops(), ra.counts().memory_ops());
}

TEST(TracedReduce, MatchesUntracedKernel) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    k233::Prod p;
    rng.fill(p);
    p[15] = 0;
    p[14] &= (1u << 17) - 1;
    k233::Fe want, got;
    k233::reduce(want, p);
    OpRecorder rec;
    reduce_traced(got, p, rec);
    EXPECT_EQ(got, want);
    EXPECT_GT(rec.counts().memory_ops(), 0u);
  }
}

TEST(TracedSqr, MatchesUntracedKernel) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    k233::Fe a;
    rng.fill(a);
    a[7] &= k233::kTopMask;
    k233::Fe want, got;
    k233::sqr(want, a);
    OpRecorder rec;
    sqr_traced(got, a, rec);
    EXPECT_EQ(got, want);
  }
}

TEST(TracedSqr, CycleCountInPaperBand) {
  // Paper Table 6: modular squaring 395 (asm) / 419 (C) cycles. The traced
  // model has no loop overhead, so it should land at or below that band
  // but within 2x.
  Rng rng(7);
  k233::Fe a;
  rng.fill(a);
  a[7] &= k233::kTopMask;
  k233::Fe r;
  OpRecorder rec;
  sqr_traced(r, a, rec);
  const auto cycles = CycleModel{}.cycles(rec.counts());
  EXPECT_GT(cycles, 150u);
  EXPECT_LT(cycles, 800u);
}

TEST(TracedInv, MatchesUntracedKernel) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    k233::Fe a;
    rng.fill(a);
    a[7] &= k233::kTopMask;
    if (k233::is_zero(a)) a[0] = 1;
    OpRecorder rec;
    const k233::Fe got = inv_traced(a, rec);
    EXPECT_EQ(got, k233::inv(a));
  }
}

TEST(TracedInv, CycleCountInPaperBand) {
  // Paper Table 6: inversion 141916 cycles in C. Our model should land in
  // the same order of magnitude (tens of thousands to ~200k).
  Rng rng(9);
  k233::Fe a;
  rng.fill(a);
  a[7] &= k233::kTopMask;
  OpRecorder rec;
  (void)inv_traced(a, rec);
  const auto cycles = CycleModel{}.cycles(rec.counts());
  EXPECT_GT(cycles, 30'000u);
  EXPECT_LT(cycles, 250'000u);
}

TEST(TracedMulFull, MatchesUntracedModularMul) {
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    k233::Fe a, b;
    rng.fill(a);
    rng.fill(b);
    a[7] &= k233::kTopMask;
    b[7] &= k233::kTopMask;
    OpRecorder rec;
    EXPECT_EQ(mul_traced(a, b, rec), k233::mul(a, b));
  }
}

TEST(TracedMulFull, CycleCountInPaperBand) {
  // Paper Table 2 estimates 2968 cycles for the fixed-register multiply;
  // the measured assembly with reduction is 3672 (Table 6). The traced
  // model (mult + reduction, no loop overhead) should fall in 2500..4500.
  Rng rng(11);
  k233::Fe a, b;
  rng.fill(a);
  rng.fill(b);
  a[7] &= k233::kTopMask;
  b[7] &= k233::kTopMask;
  OpRecorder rec;
  (void)mul_traced(a, b, rec);
  const auto cycles = CycleModel{}.cycles(rec.counts());
  EXPECT_GT(cycles, 2200u);
  EXPECT_LT(cycles, 4800u);
}

}  // namespace
}  // namespace eccm0::gf2::traced
