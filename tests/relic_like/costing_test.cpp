// End-to-end costing checks: the priced point multiplications must
// reproduce the paper's headline comparisons (Tables 4, 6, 7) in shape.
#include "relic_like/baseline.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ec/scalarmul.h"
#include "relic_like/costs.h"

namespace eccm0::relic_like {
namespace {

using ec::AffinePoint;
using ec::BinaryCurve;
using ec::CostedRun;
using ec::cost_point_mul;
using mpint::UInt;

const BinaryCurve& k233() { return BinaryCurve::sect233k1(); }
AffinePoint gen() { return AffinePoint::make(k233().gx, k233().gy); }

UInt random_scalar(std::uint64_t seed) {
  Rng rng(seed);
  return UInt::random_below(rng, k233().order);
}

TEST(Costing, ResultMatchesReferenceScalarMul) {
  const UInt k = random_scalar(1);
  ec::CurveOps ops(k233());
  const CostedRun run =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  EXPECT_EQ(run.result, ec::mul_wtnaf(ops, gen(), k, 4));
}

TEST(Costing, DigitStatisticsMatchTheory) {
  // wTNAF(w) length ~m and density ~1/(w+1).
  const UInt k = random_scalar(2);
  const CostedRun r4 =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  EXPECT_NEAR(static_cast<double>(r4.digits), 233.0, 8.0);
  EXPECT_NEAR(static_cast<double>(r4.adds), 233.0 / 5.0, 14.0);
  const CostedRun r6 =
      cost_point_mul(k233(), gen(), k, 6, false, proposed_asm_costs());
  EXPECT_NEAR(static_cast<double>(r6.adds), 233.0 / 7.0, 12.0);
  EXPECT_LT(r6.adds, r4.adds);
}

TEST(Costing, Table7RowShape) {
  // Paper Table 7 (kP): Multiply is the dominant row; the
  // Multiply-Precomputation share is ~15-30% of the multiply total;
  // Inversion ~ exactly one inversion; Square between them.
  const UInt k = random_scalar(3);
  const CostedRun run =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  const auto& c = run.cost;
  EXPECT_GT(c.multiply, c.square);
  EXPECT_GT(c.square, c.inversion);
  const double lut_share =
      static_cast<double>(c.multiply_precomp) /
      static_cast<double>(c.multiply + c.multiply_precomp);
  EXPECT_GT(lut_share, 0.10);
  EXPECT_LT(lut_share, 0.35);
  // Exactly one explicit inversion in the main flow (final conversion).
  EXPECT_EQ(run.main_ops.inv, 1u);
  EXPECT_NEAR(static_cast<double>(c.inversion),
              static_cast<double>(proposed_asm_costs().inv), 1.0);
}

TEST(Costing, FixedBaseSkipsPrecomputation) {
  const UInt k = random_scalar(4);
  const CostedRun kp =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  const CostedRun kg =
      cost_point_mul(k233(), gen(), k, 6, true, proposed_asm_costs());
  EXPECT_GT(kp.cost.tnaf_precomp, 0u);
  EXPECT_EQ(kg.cost.tnaf_precomp, 0u);
  // Paper: kG (w=6, no precomp) is ~1.5x faster than kP (w=4).
  const double ratio = static_cast<double>(kp.cost.total()) /
                       static_cast<double>(kg.cost.total());
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 1.9);
}

TEST(Costing, TotalsInPaperBand) {
  // Paper: kP 2.81M cycles, kG 1.86M. Our multiply kernel is ~25% slower
  // than the authors' final hand-tuned version, so accept 2.2M..4.5M and
  // 1.4M..3.0M.
  const UInt k = random_scalar(5);
  const CostedRun kp =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  const CostedRun kg =
      cost_point_mul(k233(), gen(), k, 6, true, proposed_asm_costs());
  EXPECT_GT(kp.cost.total(), 2'200'000u);
  EXPECT_LT(kp.cost.total(), 4'500'000u);
  EXPECT_GT(kg.cost.total(), 1'400'000u);
  EXPECT_LT(kg.cost.total(), 3'000'000u);
}

TEST(Costing, EnergyInPaperBand) {
  // Paper: kP 34.16 uJ, kG 20.63 uJ at 48 MHz, ~520-580 uW average power.
  const UInt k = random_scalar(6);
  const CostedRun kp =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  const auto& t = proposed_asm_costs();
  EXPECT_GT(kp.energy_uj(t), 25.0);
  EXPECT_LT(kp.energy_uj(t), 55.0);
  EXPECT_GT(kp.avg_power_uw(t), 500.0);
  EXPECT_LT(kp.avg_power_uw(t), 620.0);
}

TEST(Costing, AsmBeatsCBeatsRelic) {
  // Table 4/6 ordering: this-work-asm < this-work-C < RELIC-like, and the
  // RELIC-like/asm ratio near the paper's ~2x for kP.
  const UInt k = random_scalar(7);
  const auto asm_run =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_asm_costs());
  const auto c_run =
      cost_point_mul(k233(), gen(), k, 4, false, proposed_c_costs());
  RelicBaseline relic;
  const auto relic_run = relic.kp(gen(), k);
  EXPECT_LT(asm_run.cost.total(), c_run.cost.total());
  EXPECT_LT(c_run.cost.total(), relic_run.cost.total());
  const double speedup = static_cast<double>(relic_run.cost.total()) /
                         static_cast<double>(asm_run.cost.total());
  EXPECT_GT(speedup, 1.4);  // paper: 1.99
  EXPECT_LT(speedup, 2.6);
}

TEST(Costing, RelicFixedVsRandomSmallGap) {
  // Paper: RELIC kG is only marginally faster than RELIC kP (5.55M vs
  // 5.62M) because RELIC keeps w = 4 and merely caches the table.
  RelicBaseline relic;
  const UInt k = random_scalar(8);
  const auto kp = relic.kp(gen(), k);
  const auto kg = relic.kg(k);
  EXPECT_LT(kg.cost.total(), kp.cost.total());
  const double gap = static_cast<double>(kp.cost.total()) /
                     static_cast<double>(kg.cost.total());
  EXPECT_LT(gap, 1.25);
}

TEST(Costing, RejectsNonKoblitz) {
  const auto& b233 = BinaryCurve::sect233r1();
  EXPECT_THROW(cost_point_mul(b233, AffinePoint::make(b233.gx, b233.gy),
                              UInt{5}, 4, false, proposed_asm_costs()),
               std::invalid_argument);
}

TEST(CostPresets, OrderingOfPrices) {
  EXPECT_LT(proposed_asm_costs().mul, proposed_c_costs().mul);
  EXPECT_LT(proposed_c_costs().mul, relic_like_costs().mul);
  EXPECT_GT(proposed_asm_costs().mul_lut, 0u);
  EXPECT_LT(proposed_asm_costs().mul_lut, proposed_asm_costs().mul);
  // Inversion is the C EEA everywhere. The traced model gives ~44k
  // cycles; the paper measured 142k for its (unpublished) C code — the
  // delta is discussed in EXPERIMENTS.md. Sanity band only:
  EXPECT_GT(proposed_asm_costs().inv, 25'000u);
  EXPECT_LT(proposed_asm_costs().inv, 250'000u);
}

}  // namespace
}  // namespace eccm0::relic_like
