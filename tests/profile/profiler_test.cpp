// Unit tests of the symbol-attributed profiler, the RAM heatmap and the
// trace exporters against the real K-233 kernels.
//
// The load-bearing invariants: per-function *inclusive* cycles of the
// root frame equal RunStats::cycles exactly, the flat (self) cycles of
// all functions sum to the same number, and a Profiler and a PowerRig
// attached to the same run agree on total Table-3 energy.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "common/rng.h"
#include "gf2/sqr_table.h"
#include "measure/power_trace.h"
#include "profile/heatmap.h"
#include "profile/profiler.h"
#include "profile/trace_export.h"

namespace eccm0::profile {
namespace {

constexpr std::size_t kRamSize = 0x800;

std::array<std::uint32_t, 8> random_fe(Rng& rng) {
  std::array<std::uint32_t, 8> v;
  for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
  v[7] &= 0x1FF;
  return v;
}

void write_fe(armvm::Memory& mem, std::uint32_t off,
              const std::array<std::uint32_t, 8>& v) {
  for (int w = 0; w < 8; ++w) {
    mem.store32(armvm::kRamBase + off + 4 * w, v[w]);
  }
}

/// The EEA inversion kernel is the only one with real BL subroutines
/// (xsh, deg) — the strongest shadow-stack exercise we have.
struct InvRun {
  armvm::ProgramRef prog;
  armvm::Memory mem;
  armvm::Cpu cpu;
  InvRun()
      : prog(armvm::assemble(asmkernels::gen_inv())),
        mem(kRamSize),
        cpu(prog, mem, armvm::Cpu::DecodeMode::kPredecode) {}
  armvm::RunStats run(Rng& rng) {
    auto a = random_fe(rng);
    a[0] |= 1;
    write_fe(mem, asmkernels::kInOff, a);
    return cpu.call(prog->entry("entry"), {});
  }
};

TEST(Profiler, RootInclusiveCyclesEqualRunStats) {
  InvRun inv;
  Profiler prof(*inv.prog);
  inv.cpu.set_trace_sink(&prof);
  Rng rng(0xAB5);
  inv.run(rng);
  const armvm::RunStats stats = inv.cpu.stats();

  EXPECT_EQ(prof.total_cycles(), stats.cycles);
  EXPECT_EQ(prof.total_instructions(), stats.instructions);

  const auto fns = prof.functions();
  ASSERT_FALSE(fns.empty());
  // The root frame is the entry point; its inclusive cost is the run.
  std::uint64_t root_inclusive = 0, self_sum = 0, instr_sum = 0;
  for (const auto& f : fns) {
    self_sum += f.self_cycles;
    instr_sum += f.instructions;
    if (f.name == "entry") root_inclusive = f.inclusive_cycles;
  }
  EXPECT_EQ(root_inclusive, stats.cycles);
  EXPECT_EQ(self_sum, stats.cycles);
  EXPECT_EQ(instr_sum, stats.instructions);
}

TEST(Profiler, SubroutinesAndCallSitesAttributed) {
  InvRun inv;
  Profiler prof(*inv.prog);
  inv.cpu.set_trace_sink(&prof);
  Rng rng(0x5EED5);
  inv.run(rng);

  const auto fns = prof.functions();
  auto find = [&](const std::string& n) -> const Profiler::FunctionStats* {
    for (const auto& f : fns) {
      if (f.name == n) return &f;
    }
    return nullptr;
  };
  const auto* entry = find("entry");
  const auto* xsh = find("xsh");
  const auto* deg = find("deg");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(xsh, nullptr);
  ASSERT_NE(deg, nullptr);
  EXPECT_EQ(entry->calls, 1u);
  EXPECT_GT(xsh->calls, 0u);
  EXPECT_GT(deg->calls, 0u);
  EXPECT_GT(xsh->self_cycles, 0u);
  EXPECT_LE(xsh->self_cycles, xsh->inclusive_cycles);
  EXPECT_GT(xsh->self_energy_pj(), 0.0);
  // Subroutine costs nest inside the root's inclusive cost.
  EXPECT_LT(xsh->inclusive_cycles, entry->inclusive_cycles);
  EXPECT_LT(deg->inclusive_cycles, entry->inclusive_cycles);

  const auto sites = prof.call_sites();
  ASSERT_FALSE(sites.empty());
  bool saw_xsh_site = false;
  for (const auto& s : sites) {
    EXPECT_GT(s.count, 0u);
    if (s.callee == "xsh" && s.caller == "entry") saw_xsh_site = true;
  }
  EXPECT_TRUE(saw_xsh_site);

  // Collapsed stacks carry the caller;callee chain for the flamegraph.
  const auto& collapsed = prof.collapsed_stacks();
  ASSERT_FALSE(collapsed.empty());
  bool saw_chain = false;
  for (const auto& [sig, cyc] : collapsed) {
    EXPECT_GT(cyc, 0u);
    if (sig == "entry;xsh") saw_chain = true;
  }
  EXPECT_TRUE(saw_chain);

  // Spans are closed, well-ordered activations.
  const auto& spans = prof.spans();
  ASSERT_FALSE(spans.empty());
  for (const auto& sp : spans) {
    EXPECT_LE(sp.begin_cycle, sp.end_cycle);
  }
}

TEST(Profiler, PersistentMachineReopensRootPerCall) {
  // bench-style persistent machines re-enter `entry` once per call();
  // each call must open a fresh root activation and keep the totals in
  // lock-step with the cumulative RunStats.
  InvRun inv;
  Profiler prof(*inv.prog);
  inv.cpu.set_trace_sink(&prof);
  Rng rng(0x2CA11);
  inv.run(rng);
  inv.run(rng);
  const armvm::RunStats stats = inv.cpu.stats();
  EXPECT_EQ(prof.total_cycles(), stats.cycles);
  EXPECT_EQ(prof.total_instructions(), stats.instructions);
  for (const auto& f : prof.functions()) {
    if (f.name == "entry") {
      EXPECT_EQ(f.calls, 2u);
      EXPECT_EQ(f.inclusive_cycles, stats.cycles);
    }
  }
}

TEST(Profiler, AgreesWithPowerRigAndRunStatsOnEnergy) {
  // Profiler (histogram x Table 3) and PowerRig (synthesized waveform,
  // zero noise) attached to the SAME run via the TeeSink must integrate
  // to the same total energy, which is also the Cpu's own energy report.
  const armvm::ProgramRef prog =
      armvm::assemble(asmkernels::gen_mul_fixed(true));
  armvm::Memory mem(kRamSize);
  armvm::Cpu cpu(prog, mem, armvm::Cpu::DecodeMode::kPredecode);
  Rng rng(0xE4E26);
  write_fe(mem, asmkernels::kXOff, random_fe(rng));
  write_fe(mem, asmkernels::kYOff, random_fe(rng));

  Profiler prof(*prog);
  measure::RigConfig cfg;
  cfg.noise_uw = 0.0;
  cfg.bias_uw = 0.0;
  measure::PowerRig rig(cfg);
  armvm::TeeSink tee({&prof, &rig});
  cpu.set_trace_sink(&tee);
  cpu.call(prog->entry("entry"), {});
  const armvm::RunStats stats = cpu.stats();

  const double model_pj = stats.energy().energy_pj;
  const double prof_pj = prof.total_energy_pj();
  const double rig_pj = rig.total_energy_uj() * 1e6;
  EXPECT_GT(model_pj, 0.0);
  EXPECT_DOUBLE_EQ(prof_pj, model_pj);
  EXPECT_NEAR(rig_pj, model_pj, model_pj * 1e-9);
  // And the waveform has exactly one sample per simulated cycle.
  EXPECT_EQ(rig.trace().size(), stats.cycles);
}

TEST(MemHeatmap, FixedRegisterMulStarvesRegisteredProductWords) {
  // The paper's claim, observed: the fixed-register LD multiplication
  // pins v[3..11] in registers, so those product words see (near) zero
  // RAM traffic while the plain-memory variant hammers them.
  Rng rng(0x6EA7);
  const auto x = random_fe(rng), y = random_fe(rng);
  auto run = [&](bool fixed) {
    const armvm::ProgramRef prog = armvm::assemble(
        fixed ? asmkernels::gen_mul_fixed(true)
              : asmkernels::gen_mul_plain(true));
    armvm::Memory mem(kRamSize);
    armvm::Cpu cpu(prog, mem, armvm::Cpu::DecodeMode::kPredecode);
    write_fe(mem, asmkernels::kXOff, x);
    write_fe(mem, asmkernels::kYOff, y);
    auto heat = std::make_unique<MemHeatmap>(kRamSize);
    cpu.set_trace_sink(heat.get());
    cpu.call(prog->entry("entry"), {});
    return heat;
  };
  const auto fixed = run(true);
  const auto plain = run(false);

  std::uint64_t fixed_pinned = 0, plain_pinned = 0;
  for (std::size_t w = 3; w <= 11; ++w) {
    fixed_pinned += fixed->traffic_at(asmkernels::kVOff / 4 + w);
    plain_pinned += plain->traffic_at(asmkernels::kVOff / 4 + w);
  }
  // "Near-zero": the fixed kernel only touches them to spill the final
  // result (and fold the reduction); the plain kernel re-loads/stores
  // them on every inner step.
  EXPECT_GT(plain_pinned, 10 * fixed_pinned);
  EXPECT_GT(plain_pinned, 500u);

  // Both variants read the LUT heavily — the heatmap sees that too.
  const MemHeatmap::Region lut{"LUT", asmkernels::kLutOff, 16 * 8};
  EXPECT_GT(fixed->summarize(lut).loads, 100u);
  EXPECT_GT(plain->summarize(lut).loads, 100u);

  // Region summaries add up to the totals over the whole RAM.
  const MemHeatmap::Region all{"ram", 0, kRamSize / 4};
  const auto rep = fixed->summarize(all);
  EXPECT_EQ(rep.loads, fixed->total_loads());
  EXPECT_EQ(rep.stores, fixed->total_stores());

  // hottest() is sorted descending and consistent with traffic_at().
  const auto hot = fixed->hottest(4);
  ASSERT_FALSE(hot.empty());
  for (std::size_t i = 1; i < hot.size(); ++i) {
    EXPECT_GE(hot[i - 1].second, hot[i].second);
  }
  EXPECT_EQ(hot[0].second, fixed->traffic_at(hot[0].first));
}

TEST(TraceExport, ChromeTraceAndCollapsedStacks) {
  InvRun inv;
  Profiler prof(*inv.prog);
  inv.cpu.set_trace_sink(&prof);
  Rng rng(0xEC5);
  inv.run(rng);

  const NamedProfile tracks[] = {{"inv", &prof}};
  const std::string json = chrome_trace_json(tracks);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("entry"), std::string::npos);
  EXPECT_NE(json.find("xsh"), std::string::npos);
  // Valid JSON shape: balanced braces/brackets at least.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string flame = collapsed_stack_text(tracks);
  EXPECT_NE(flame.find("entry;xsh "), std::string::npos);
  // Every line is "stack<space>count".
  std::uint64_t total = 0;
  for (std::size_t pos = 0; pos < flame.size();) {
    const std::size_t eol = flame.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = flame.substr(pos, eol - pos);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    total += std::stoull(line.substr(sp + 1));
    pos = eol + 1;
  }
  EXPECT_EQ(total, prof.total_cycles());
}

}  // namespace
}  // namespace eccm0::profile
