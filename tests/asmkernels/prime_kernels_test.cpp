// Differential tests for the prime-field Thumb kernels: every VM result
// must match the mpint host oracle (UInt product, Montgomery::mul, REDC
// via R^-1, invmod) on random and edge operands, for all three curves.
#include <gtest/gtest.h>

#include <vector>

#include "asmkernels/gen.h"
#include "common/rng.h"
#include "ecp/curve.h"
#include "mpint/montgomery.h"
#include "mpint/uint.h"
#include "workloads/kp_mix.h"
#include "workloads/spec.h"

namespace eccm0::asmkernels {
namespace {

using mpint::UInt;
using workloads::KernelMachine;

struct CurveCase {
  const char* tag;
  const ecp::PrimeCurve& (*curve)();
};

const CurveCase kCurves[] = {
    {"p192", ecp::PrimeCurve::secp192r1},
    {"p224", ecp::PrimeCurve::secp224r1},
    {"p256", ecp::PrimeCurve::secp256r1},
};

std::vector<std::uint32_t> to_words(const UInt& v, std::size_t n) {
  std::vector<std::uint32_t> w(n, 0);
  const auto limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size() && i < n; ++i) w[i] = limbs[i];
  return w;
}

UInt read_uint(armvm::Memory& mem, std::uint32_t off, std::size_t n) {
  std::vector<std::uint32_t> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = mem.load32(armvm::kRamBase + off + 4 * i);
  }
  return UInt(std::move(w));
}

class PrimeKernelTest : public ::testing::TestWithParam<CurveCase> {
 protected:
  const ecp::PrimeCurve& pc() const { return GetParam().curve(); }
  std::size_t n() const { return pc().limbs(); }
  std::string kname(const char* op) const {
    return std::string(GetParam().tag) + "-" + op;
  }
  const workloads::CurveRef& cref() const {
    return workloads::curve_from_name(pc().name);
  }
};

TEST_P(PrimeKernelTest, RawMulMatchesHostProduct) {
  KernelMachine m(kname("mul"));
  Rng rng(11);
  for (int i = 0; i < 8; ++i) {
    const UInt x = UInt::random_below(rng, pc().p);
    const UInt y = UInt::random_below(rng, pc().p);
    workloads::load_prime_mul_inputs(m.mem(), to_words(x, n()),
                                     to_words(y, n()));
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kVOff, 2 * n()), x * y) << "iteration " << i;
  }
}

TEST_P(PrimeKernelTest, MontMulMatchesOracle) {
  KernelMachine m(kname("mont"));
  workloads::load_prime_modulus(m.mem(), cref());
  Rng rng(12);
  for (int i = 0; i < 8; ++i) {
    const UInt a = UInt::random_below(rng, pc().p);
    const UInt b = UInt::random_below(rng, pc().p);
    workloads::load_prime_mul_inputs(m.mem(), to_words(a, n()),
                                     to_words(b, n()));
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), pc().mont->mul(a, b))
        << "iteration " << i;
  }
}

TEST_P(PrimeKernelTest, MontMulEdgeOperands) {
  KernelMachine m(kname("mont"));
  workloads::load_prime_modulus(m.mem(), cref());
  const UInt zero = 0, one = 1, top = pc().p - one;
  for (const UInt& a : {zero, one, top}) {
    for (const UInt& b : {zero, one, top}) {
      workloads::load_prime_mul_inputs(m.mem(), to_words(a, n()),
                                       to_words(b, n()));
      m.call();
      EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), pc().mont->mul(a, b))
          << a.to_hex() << " * " << b.to_hex();
    }
  }
}

TEST_P(PrimeKernelTest, SqrMatchesOracle) {
  KernelMachine m(kname("sqr"));
  workloads::load_prime_modulus(m.mem(), cref());
  Rng rng(13);
  for (int i = 0; i < 8; ++i) {
    const UInt a = UInt::random_below(rng, pc().p);
    // The squaring kernel reads only the x slot.
    workloads::load_prime_mul_inputs(m.mem(), to_words(a, n()),
                                     to_words(0, n()));
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), pc().mont->sqr(a))
        << "iteration " << i;
  }
}

TEST_P(PrimeKernelTest, RedcMatchesHostReduction) {
  KernelMachine m(kname("redc"));
  workloads::load_prime_modulus(m.mem(), cref());
  // REDC(t) = t * R^-1 mod m; derive the expectation from first
  // principles rather than the oracle's own redc.
  const UInt r = UInt::pow2(32 * n());
  const UInt rinv = mpint::invmod(r % pc().p, pc().p);
  Rng rng(14);
  for (int i = 0; i < 8; ++i) {
    // Any t < m*R is a valid Montgomery intermediate.
    const UInt t = UInt::random_below(rng, pc().p << (32 * n()));
    workloads::load_prime_wide_input(m.mem(), to_words(t, 2 * n()));
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()),
              mpint::mulmod(t % pc().p, rinv, pc().p))
        << "iteration " << i;
  }
}

TEST_P(PrimeKernelTest, InvMatchesHostInvmod) {
  KernelMachine m(kname("inv"));
  workloads::load_prime_modulus(m.mem(), cref());
  Rng rng(15);
  for (int i = 0; i < 4; ++i) {
    UInt a = UInt::random_below(rng, pc().p);
    if (a.is_zero()) a = 1;
    workloads::load_prime_inv_input(m.mem(), to_words(a, n()));
    m.call();
    const UInt got = read_uint(m.mem(), kOutOff, n());
    EXPECT_EQ(got, mpint::invmod(a, pc().p)) << "iteration " << i;
    EXPECT_EQ(mpint::mulmod(got, a, pc().p), UInt(1));
  }
}

TEST_P(PrimeKernelTest, InvEdgeOperands) {
  KernelMachine m(kname("inv"));
  workloads::load_prime_modulus(m.mem(), cref());
  const UInt one = 1;
  for (const UInt& a : {one, pc().p - one, UInt(2)}) {
    workloads::load_prime_inv_input(m.mem(), to_words(a, n()));
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), mpint::invmod(a, pc().p))
        << a.to_hex();
  }
}

// The replay() harness calls mont/sqr/inv kernels back-to-back without
// reloading; they must be rerunnable (redc is the exception — it
// consumes its wide input in place).
TEST_P(PrimeKernelTest, MontAndInvAreRerunnable) {
  const workloads::PrimeOperands& od = workloads::PrimeOperands::standard(cref());
  {
    KernelMachine m(kname("mont"));
    workloads::load_prime_modulus(m.mem(), cref());
    workloads::load_prime_mul_inputs(m.mem(), od.x, od.y);
    m.call();
    const UInt first = read_uint(m.mem(), kOutOff, n());
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), first);
  }
  {
    KernelMachine m(kname("inv"));
    workloads::load_prime_modulus(m.mem(), cref());
    workloads::load_prime_inv_input(m.mem(), od.a);
    m.call();
    const UInt first = read_uint(m.mem(), kOutOff, n());
    m.call();
    EXPECT_EQ(read_uint(m.mem(), kOutOff, n()), first);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrimeCurves, PrimeKernelTest,
                         ::testing::ValuesIn(kCurves),
                         [](const auto& info) {
                           return std::string(info.param.tag);
                         });

}  // namespace
}  // namespace eccm0::asmkernels
