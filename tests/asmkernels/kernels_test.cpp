// Differential tests: the VM-executed Thumb kernels must agree with the
// portable C++ kernel on every operation, and their measured cycle counts
// must land in the paper's bands (Tables 2, 5, 6).
#include "workloads/runner.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf2/field.h"
#include "gf2/poly.h"

namespace eccm0::asmkernels {
namespace {

using gf2::k233::Fe;
using gf2::k233::kTopMask;
using gf2::k233::Prod;

Fe random_fe(Rng& rng) {
  Fe f;
  rng.fill(f);
  f[7] &= kTopMask;
  return f;
}

class KernelTest : public ::testing::Test {
 protected:
  static KernelVm& vm() {
    static KernelVm v;  // assembling ~6 kernels once is enough
    return v;
  }
};

TEST_F(KernelTest, MulFixedMatchesCppProduct) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Fe x = random_fe(rng);
    const Fe y = random_fe(rng);
    Prod want;
    gf2::k233::mul_ld(want, x, y);
    const auto got = vm().mul(MulKernel::kFixedRegisters, x, y, false);
    EXPECT_EQ(got.product, want) << "iteration " << i;
  }
}

TEST_F(KernelTest, MulPlainMatchesCppProduct) {
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    const Fe x = random_fe(rng);
    const Fe y = random_fe(rng);
    Prod want;
    gf2::k233::mul_ld(want, x, y);
    const auto got = vm().mul(MulKernel::kPlainMemory, x, y, false);
    EXPECT_EQ(got.product, want);
  }
}

TEST_F(KernelTest, MulModularMatchesCpp) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Fe x = random_fe(rng);
    const Fe y = random_fe(rng);
    const Fe want = gf2::k233::mul(x, y);
    EXPECT_EQ(vm().mul(MulKernel::kFixedRegisters, x, y, true).reduced, want);
    EXPECT_EQ(vm().mul(MulKernel::kPlainMemory, x, y, true).reduced, want);
  }
}

TEST_F(KernelTest, MulEdgeOperands) {
  const Fe zero{};
  Fe one{};
  one[0] = 1;
  Fe top{};
  top[7] = 1u << 8;
  Rng rng(4);
  const Fe r = random_fe(rng);
  for (const Fe& x : {zero, one, top, r}) {
    for (const Fe& y : {zero, one, top, r}) {
      Prod want;
      gf2::k233::mul_ld(want, x, y);
      EXPECT_EQ(vm().mul(MulKernel::kFixedRegisters, x, y, false).product,
                want);
    }
  }
}

TEST_F(KernelTest, SqrMatchesCpp) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Fe a = random_fe(rng);
    Fe want;
    gf2::k233::sqr(want, a);
    EXPECT_EQ(vm().sqr(a).value, want);
  }
}

TEST_F(KernelTest, ReduceMatchesCpp) {
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    Prod p;
    rng.fill(p);
    p[15] = 0;
    p[14] &= (1u << 17) - 1;
    Fe want;
    gf2::k233::reduce(want, p);
    EXPECT_EQ(vm().reduce(p).value, want);
  }
}

TEST_F(KernelTest, CyclesAreInputIndependent) {
  // Straight-line kernels: cycle count must not depend on data (a
  // constant-time property the paper's field layer has by construction).
  Rng rng(7);
  const auto c1 =
      vm().mul(MulKernel::kFixedRegisters, random_fe(rng), random_fe(rng),
               true)
          .stats.cycles;
  const auto c2 =
      vm().mul(MulKernel::kFixedRegisters, random_fe(rng), random_fe(rng),
               true)
          .stats.cycles;
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(vm().sqr(random_fe(rng)).stats.cycles,
            vm().sqr(random_fe(rng)).stats.cycles);
}

TEST_F(KernelTest, FixedRegistersBeatPlainMemory) {
  // The paper's headline mechanism, now measured on the ISA simulator:
  // pinning v[3..11] in registers must cut cycles vs the all-memory
  // version (Table 6: 3672 asm vs 5964 C).
  Rng rng(8);
  const Fe x = random_fe(rng);
  const Fe y = random_fe(rng);
  const auto fixed = vm().mul(MulKernel::kFixedRegisters, x, y, true).stats;
  const auto plain = vm().mul(MulKernel::kPlainMemory, x, y, true).stats;
  EXPECT_LT(fixed.cycles, plain.cycles);
  // At least 15% faster (paper shows ~38%).
  EXPECT_LT(static_cast<double>(fixed.cycles),
            0.85 * static_cast<double>(plain.cycles));
}

TEST_F(KernelTest, MulCyclesInPaperBand) {
  // Paper: 3672 cycles for the assembly fixed-register modular multiply.
  // Our kernel is the same algorithm without the paper's final
  // hand-tuning; accept 2500..6000 and report the exact number in the
  // bench.
  Rng rng(9);
  const auto s =
      vm().mul(MulKernel::kFixedRegisters, random_fe(rng), random_fe(rng),
               true)
          .stats;
  EXPECT_GT(s.cycles, 2500u);
  EXPECT_LT(s.cycles, 6000u);
}

TEST_F(KernelTest, SqrCyclesInPaperBand) {
  // Paper: 395 cycles (assembly). Accept 250..800.
  Rng rng(10);
  const auto s = vm().sqr(random_fe(rng)).stats;
  EXPECT_GT(s.cycles, 250u);
  EXPECT_LT(s.cycles, 800u);
}

TEST_F(KernelTest, EnergyPerCycleNearTable3Band) {
  // Whole-kernel average energy per cycle must sit inside the Table 3
  // instruction range (10.98 .. 13.45 pJ/cycle).
  Rng rng(11);
  const auto s =
      vm().mul(MulKernel::kFixedRegisters, random_fe(rng), random_fe(rng),
               true)
          .stats;
  const auto e = s.energy();
  const double pj_per_cycle = e.energy_pj / static_cast<double>(e.cycles);
  EXPECT_GT(pj_per_cycle, 10.9);
  EXPECT_LT(pj_per_cycle, 13.5);
}

TEST_F(KernelTest, InvMatchesCpp) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    Fe a = random_fe(rng);
    if (gf2::k233::is_zero(a)) a[0] = 1;
    EXPECT_EQ(vm().inv(a).value, gf2::k233::inv(a)) << "iteration " << i;
  }
}

TEST_F(KernelTest, InvEdgeCases) {
  Fe one{};
  one[0] = 1;
  EXPECT_EQ(vm().inv(one).value, one);
  // Smallest non-trivial element: z.
  Fe z{};
  z[1 / 32] = 1u << 1;
  EXPECT_EQ(vm().inv(z).value, gf2::k233::inv(z));
  // Highest-degree element.
  Fe top{};
  top[7] = 1u << 8;
  EXPECT_EQ(vm().inv(top).value, gf2::k233::inv(top));
}

TEST_F(KernelTest, InvCyclesInPaperBand) {
  // The paper's compiled-C inversion: 141,916 cycles. The looping Thumb
  // EEA lands in the same band for random (full-degree) inputs.
  Rng rng(13);
  Fe a = random_fe(rng);
  if (gf2::k233::is_zero(a)) a[0] = 1;
  const auto s = vm().inv(a).stats;
  EXPECT_GT(s.cycles, 90'000u);
  EXPECT_LT(s.cycles, 170'000u);
}

TEST_F(KernelTest, InvRoundTripThroughMulKernel) {
  // inv then mul on the VM end to end: a * a^-1 = 1 without ever leaving
  // simulated silicon.
  Rng rng(14);
  const Fe a = random_fe(rng);
  const Fe ai = vm().inv(a).value;
  Fe one{};
  one[0] = 1;
  EXPECT_EQ(vm().mul(MulKernel::kFixedRegisters, a, ai, true).reduced, one);
}

TEST_F(KernelTest, K163MulMatchesGenericField) {
  const auto& f = gf2::GF2Field::f163();
  Rng rng(15);
  for (int i = 0; i < 15; ++i) {
    const gf2::Elem a = f.random(rng);
    const gf2::Elem b = f.random(rng);
    KernelVm::Fe163 x{}, y{};
    for (std::size_t w = 0; w < 6; ++w) {
      x[w] = a[w];
      y[w] = b[w];
    }
    const gf2::Elem want = f.mul(a, b);
    const auto got =
        vm().mul_k163(MulKernel::kFixedRegisters, x, y, true).reduced;
    for (std::size_t w = 0; w < 6; ++w) {
      EXPECT_EQ(got[w], want[w]) << "word " << w << " iter " << i;
    }
    const auto got_plain =
        vm().mul_k163(MulKernel::kPlainMemory, x, y, true).reduced;
    for (std::size_t w = 0; w < 6; ++w) EXPECT_EQ(got_plain[w], want[w]);
  }
}

TEST_F(KernelTest, K163RawProductMatchesPolyOracle) {
  const auto& f = gf2::GF2Field::f163();
  Rng rng(16);
  const gf2::Elem a = f.random(rng);
  const gf2::Elem b = f.random(rng);
  KernelVm::Fe163 x{}, y{};
  for (std::size_t w = 0; w < 6; ++w) {
    x[w] = a[w];
    y[w] = b[w];
  }
  const auto got = vm().mul_k163(MulKernel::kFixedRegisters, x, y, false);
  const gf2::Poly want = gf2::Poly::mul(f.to_poly(a), f.to_poly(b));
  const gf2::Poly got_poly{
      std::vector<Word>(got.product.begin(), got.product.end())};
  EXPECT_EQ(got_poly, want);
}

TEST_F(KernelTest, K163FixedBeatsPlainAndScalesBelowK233) {
  const auto& f = gf2::GF2Field::f163();
  Rng rng(17);
  const gf2::Elem a = f.random(rng);
  const gf2::Elem b = f.random(rng);
  KernelVm::Fe163 x{}, y{};
  for (std::size_t w = 0; w < 6; ++w) {
    x[w] = a[w];
    y[w] = b[w];
  }
  const auto fixed =
      vm().mul_k163(MulKernel::kFixedRegisters, x, y, true).stats.cycles;
  const auto plain =
      vm().mul_k163(MulKernel::kPlainMemory, x, y, true).stats.cycles;
  EXPECT_LT(fixed, plain);
  // n = 6 must be meaningfully cheaper than n = 8 (quadratic inner work),
  // and in the band of contemporaries (Gouvea's MSP430X F(2^163): 3585).
  EXPECT_LT(fixed, 3600u);
  EXPECT_GT(fixed, 1500u);
}

}  // namespace
}  // namespace eccm0::asmkernels
