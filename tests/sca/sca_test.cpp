// Leakage-assessment subsystem: the detector must prove its own power.
// The straight-line K-233 kernels and the Montgomery ladder verify
// constant-trace; the EEA inversion and wTNAF kP must be FLAGGED — a
// verifier that passes everything is vacuous.
#include "sca/campaign.h"
#include "sca/ct_check.h"
#include "sca/digest.h"
#include "sca/tvla.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"

namespace eccm0::sca {
namespace {

armvm::TraceEvent make_event(std::uint32_t pc, costmodel::InstrClass cls,
                             std::uint8_t cycles, std::uint32_t addr = 0) {
  armvm::TraceEvent ev;
  ev.pc = pc;
  ev.num_costs = 1;
  ev.costs[0] = {cls, cycles};
  if (addr != 0) {
    ev.num_accesses = 1;
    ev.accesses[0] = {addr, 4, false};
  }
  return ev;
}

TEST(TraceDigest, IdenticalStreamsCompareEqual) {
  TraceDigest a, b;
  for (int i = 0; i < 5; ++i) {
    const auto ev = make_event(4 * i, costmodel::InstrClass::kEor, 1);
    a.on_retire(ev);
    b.on_retire(ev);
  }
  EXPECT_EQ(a.digest(), b.digest());
  const armvm::Program prog({}, {});
  EXPECT_FALSE(first_divergence(a, b, prog).diverged);
}

TEST(TraceDigest, FirstDivergenceNamesIndexPcAndSymbol) {
  const armvm::Program prog({}, {{"mul_top", 0}, {"mul_inner", 8}});
  TraceDigest a, b;
  a.on_retire(make_event(0, costmodel::InstrClass::kEor, 1));
  b.on_retire(make_event(0, costmodel::InstrClass::kEor, 1));
  // Divergence at retirement index 1, pc 12 = mul_inner+0x4.
  a.on_retire(make_event(12, costmodel::InstrClass::kLdr, 2, 0x20000040));
  b.on_retire(make_event(12, costmodel::InstrClass::kLdr, 2, 0x20000044));
  const Divergence d = first_divergence(a, b, prog);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(d.pc_a, 12u);
  EXPECT_EQ(d.symbol_a, "mul_inner+0x4");
  EXPECT_EQ(d.reason, "addresses");
}

TEST(TraceDigest, LengthMismatchIsDivergence) {
  const armvm::Program prog({}, {{"entry", 0}});
  TraceDigest a, b;
  a.on_retire(make_event(0, costmodel::InstrClass::kEor, 1));
  a.on_retire(make_event(2, costmodel::InstrClass::kEor, 1));
  b.on_retire(make_event(0, costmodel::InstrClass::kEor, 1));
  const Divergence d = first_divergence(a, b, prog);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.reason, "length");
  EXPECT_EQ(d.index, 1u);
  EXPECT_EQ(d.symbol_b, "<ended>");
}

TEST(CtCheck, StraightLineKernelsAreTimingConstant) {
  for (const char* k : {"mul", "sqr", "reduce", "lut"}) {
    CtConfig cfg;
    cfg.kernel = k;
    cfg.runs = 6;
    const CtReport rep = check_kernel_constant_trace(cfg);
    EXPECT_TRUE(rep.constant) << k << " diverged at index " << rep.first.index
                              << " (" << rep.first.reason << ") in "
                              << rep.first.symbol_a;
    EXPECT_EQ(rep.min_cycles, rep.max_cycles) << k;
    EXPECT_EQ(rep.ref_cycles, rep.min_cycles) << k;
    EXPECT_GT(rep.trace_len, 0u) << k;
  }
}

TEST(CtCheck, TableLookupKernelsFailTheAddressCriterion) {
  // mul and sqr index their lookup tables by operand nibbles/bytes: the
  // cycle stream is constant but the address stream is not. reduce and
  // lut touch only operand-independent addresses.
  for (const char* k : {"mul", "sqr"}) {
    CtConfig cfg;
    cfg.kernel = k;
    cfg.runs = 4;
    const CtReport rep = check_kernel_constant_trace(cfg);
    EXPECT_TRUE(rep.constant) << k;
    EXPECT_FALSE(rep.constant_addresses) << k;
    EXPECT_EQ(rep.first.reason, "addresses") << k;
  }
  for (const char* k : {"reduce", "lut"}) {
    CtConfig cfg;
    cfg.kernel = k;
    cfg.runs = 4;
    const CtReport rep = check_kernel_constant_trace(cfg);
    EXPECT_TRUE(rep.constant_addresses) << k;
  }
}

TEST(CtCheck, EeaInversionIsFlagged) {
  CtConfig cfg;
  cfg.kernel = "inv";
  cfg.runs = 4;
  const CtReport rep = check_kernel_constant_trace(cfg);
  EXPECT_FALSE(rep.constant);
  EXPECT_FALSE(rep.constant_addresses);
  ASSERT_TRUE(rep.first.diverged);
  // The report must localise the leak: an index, a pc, and the enclosing
  // label resolved through Program::symbols.
  EXPECT_FALSE(rep.first.symbol_a.empty());
  EXPECT_NE(rep.first.symbol_a, "?");
  EXPECT_FALSE(rep.first.reason.empty());
  // EEA iteration count depends on operand degrees: cycles spread too.
  EXPECT_LT(rep.min_cycles, rep.max_cycles);
}

TEST(CtCheck, PrimeKernelsCheckEndToEnd) {
  // The checker runs on the curve-tagged prime kernels through the same
  // recipe seam. The Montgomery REDC carry loop and final conditional
  // subtract are operand-dependent, so mont is (correctly) flagged
  // non-constant; the EEA inverse diverges even harder.
  for (const char* k : {"p192-mont", "p256-sqr"}) {
    CtConfig cfg;
    cfg.kernel = k;
    cfg.runs = 6;
    const CtReport rep = check_kernel_constant_trace(cfg);
    EXPECT_GT(rep.trace_len, 0u) << k;
    EXPECT_FALSE(rep.constant) << k;
    ASSERT_TRUE(rep.first.diverged) << k;
    EXPECT_FALSE(rep.first.symbol_a.empty()) << k;
  }
  CtConfig inv;
  inv.kernel = "p224-inv";
  inv.runs = 4;
  const CtReport rep = check_kernel_constant_trace(inv);
  EXPECT_FALSE(rep.constant);
  EXPECT_LT(rep.min_cycles, rep.max_cycles);
}

TEST(CtCheck, ConstantKernelReportIsSeedStable) {
  CtConfig a, b;
  a.kernel = b.kernel = "mul";
  a.runs = b.runs = 4;
  a.seed = 1;
  b.seed = 2;
  // Different operand draws, same architectural trace: the digest is a
  // property of the kernel, not of the seed.
  EXPECT_EQ(check_kernel_constant_trace(a).digest,
            check_kernel_constant_trace(b).digest);
}

TEST(CtCheck, LadderOpMixIsExactlyUniform) {
  const LadderReport rep = check_ladder_op_mix(4, 0xAB);
  EXPECT_TRUE(rep.uniform);
  EXPECT_GT(rep.steps, 4u * 200u);  // ~232 bits per scalar
  // Hankerson Alg 3.40: madd (4M 1S 2A) + mdouble (2M 4S 1A) every bit.
  EXPECT_EQ(rep.step_mix.mul, 6u);
  EXPECT_EQ(rep.step_mix.sqr, 5u);
  EXPECT_EQ(rep.step_mix.inv, 0u);
  EXPECT_EQ(rep.step_mix.add, 3u);
}

TEST(CtCheck, WtnafOpMixIsFlagged) {
  const WtnafReport rep = check_wtnaf_op_mix(6, 0xAB, 4);
  EXPECT_FALSE(rep.uniform);
  EXPECT_LT(rep.min_total, rep.max_total);
}

TEST(CtCheck, TracedMixSqrUniformMulTrimJitterInvFlagged) {
  const TracedMixReport rep = check_traced_op_mix(40, 0x5CA, 0.02);
  EXPECT_TRUE(rep.sqr_uniform);
  // mul's only data dependence is live-range trimming of the inter-pass
  // shift: a fraction of a percent, inside tolerance.
  EXPECT_TRUE(rep.mul_within_tolerance);
  EXPECT_GT(rep.mul_spread, 0.0);
  EXPECT_LT(rep.mul_spread, 0.01);
  // EEA inversion is data-dependent by double-digit percentages.
  EXPECT_TRUE(rep.inv_flagged);
  EXPECT_GT(rep.inv_spread, 0.05);
}

TEST(Welch, MatchesClosedForm) {
  // t = (5 - 3) / sqrt(4/16 + 9/9) = 2 / sqrt(1.25)
  EXPECT_NEAR(welch_t(5.0, 4.0, 16, 3.0, 9.0, 9), 2.0 / std::sqrt(1.25),
              1e-12);
  EXPECT_EQ(welch_t(5.0, 4.0, 1, 3.0, 9.0, 9), 0.0);  // n < 2: undefined
  // Zero pooled variance, distinct means: infinitely significant.
  EXPECT_TRUE(std::isinf(welch_t(5.0, 0.0, 8, 3.0, 0.0, 8)));
  EXPECT_EQ(welch_t(5.0, 0.0, 8, 5.0, 0.0, 8), 0.0);
}

TEST(WelfordTrace, MomentsMatchClosedForm) {
  WelfordTrace w;
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.add({v});
  EXPECT_EQ(w.count(0), 4u);
  EXPECT_NEAR(w.mean(0), 2.5, 1e-12);
  EXPECT_NEAR(w.variance(0), 5.0 / 3.0, 1e-12);  // sample variance
}

TEST(WelfordTrace, RaggedTracesKeepPerCycleCounts) {
  WelfordTrace w;
  w.add({1.0, 2.0, 3.0});
  w.add({1.0});
  EXPECT_EQ(w.max_len(), 3u);
  EXPECT_EQ(w.count(0), 2u);
  EXPECT_EQ(w.count(1), 1u);
  EXPECT_EQ(w.count(5), 0u);
}

TEST(Tvla, SyntheticLeakCrossesThreshold) {
  Rng rng(42);
  auto noise = [&rng] {
    // Sum of uniforms: mean 0, enough spread to give a sane variance.
    return (static_cast<double>(rng.next_u64() % 1000) - 499.5) / 1000.0;
  };
  Tvla clean(4.5), leaky(4.5);
  for (int i = 0; i < 200; ++i) {
    clean.add_fixed({10.0 + noise(), 20.0 + noise()});
    clean.add_random({10.0 + noise(), 20.0 + noise()});
    leaky.add_fixed({10.0 + noise(), 25.0 + noise()});  // cycle 1 leaks
    leaky.add_random({10.0 + noise(), 20.0 + noise()});
  }
  EXPECT_FALSE(clean.summary().leaky);
  const TvlaSummary s = leaky.summary();
  EXPECT_TRUE(s.leaky);
  EXPECT_FALSE(s.length_leak);
  EXPECT_EQ(s.max_cycle, 1u);
  EXPECT_GT(s.max_abs_t, 4.5);
}

TEST(TvlaCampaign, MulKernelIsCleanAndThreadCountInvariant) {
  TvlaCampaignConfig cfg;
  cfg.kernel = "mul";
  cfg.traces_per_class = 20;
  cfg.threads = 1;
  const TvlaCampaignResult serial = run_tvla_campaign(cfg);
  EXPECT_FALSE(serial.summary.leaky);
  EXPECT_FALSE(serial.summary.length_leak);
  EXPECT_EQ(serial.summary.fixed_traces, 20u);
  EXPECT_GT(serial.summary.compared_cycles, 0u);

  cfg.threads = 4;
  const TvlaCampaignResult parallel = run_tvla_campaign(cfg);
  EXPECT_EQ(serial.t_digest, parallel.t_digest);
  EXPECT_EQ(serial.summary.max_abs_t, parallel.summary.max_abs_t);
  EXPECT_EQ(serial.t_trace, parallel.t_trace);
}

TEST(TvlaCampaign, EeaInversionLeaksThroughControlFlow) {
  TvlaCampaignConfig cfg;
  cfg.kernel = "inv";
  cfg.traces_per_class = 10;
  cfg.threads = 0;  // hardware concurrency; result is thread-invariant
  const TvlaCampaignResult res = run_tvla_campaign(cfg);
  EXPECT_TRUE(res.summary.leaky);
  // Variable EEA iteration counts show up as a trace-length leak on top
  // of the per-cycle t excursions.
  EXPECT_TRUE(res.summary.length_leak);
}

}  // namespace
}  // namespace eccm0::sca
