// Prime-curve substrate tests: SEC2 parameter validation, Jacobian vs
// affine consistency, scalar-mult cross-checks, and the M0+ cost model's
// shape properties.
#include "ecp/costing.h"
#include "ecp/curve.h"
#include "ecp/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eccm0::ecp {
namespace {

using mpint::UInt;

class PrimeCurveTest : public ::testing::TestWithParam<const PrimeCurve*> {
 protected:
  PrimeCurveTest() : ops_(*GetParam()) {}
  PrimeCurveOps ops_;
};

TEST_P(PrimeCurveTest, GeneratorOnCurve) {
  EXPECT_TRUE(ops_.on_curve(ops_.generator()));
}

TEST_P(PrimeCurveTest, ImportExportRoundTrip) {
  const auto& c = *GetParam();
  const AffinePointP g = ops_.generator();
  UInt x, y;
  ops_.export_point(g, &x, &y);
  EXPECT_EQ(x, c.gx);
  EXPECT_EQ(y, c.gy);
}

TEST_P(PrimeCurveTest, AffineGroupLaws) {
  Rng rng(1);
  const AffinePointP g = ops_.generator();
  const AffinePointP p = mul_naive_p(ops_, g, UInt{1 + rng.next_below(500)});
  const AffinePointP q = mul_naive_p(ops_, g, UInt{1 + rng.next_below(500)});
  EXPECT_TRUE(ops_.on_curve(p));
  EXPECT_TRUE(ops_.eq(ops_.add(p, q), ops_.add(q, p)));
  EXPECT_TRUE(ops_.add(p, ops_.neg(p)).inf);
  EXPECT_TRUE(ops_.eq(ops_.dbl(p), ops_.add(p, p)));
  EXPECT_TRUE(ops_.eq(ops_.add(p, AffinePointP::infinity()), p));
}

TEST_P(PrimeCurveTest, JacobianMatchesAffine) {
  Rng rng(2);
  const AffinePointP g = ops_.generator();
  const AffinePointP p = mul_naive_p(ops_, g, UInt{1 + rng.next_below(500)});
  const AffinePointP q = mul_naive_p(ops_, g, UInt{1 + rng.next_below(500)});
  JacobianPoint j = ops_.to_jacobian(p);
  ops_.jac_double(j);
  ops_.jac_double(j);
  ops_.jac_add_mixed(j, q);
  const AffinePointP want = ops_.add(ops_.dbl(ops_.dbl(p)), q);
  EXPECT_TRUE(ops_.eq(ops_.to_affine(j), want));
}

TEST_P(PrimeCurveTest, JacobianSpecialCases) {
  const AffinePointP g = ops_.generator();
  // P + (-P) = infinity.
  JacobianPoint j = ops_.to_jacobian(g);
  ops_.jac_double(j);
  const AffinePointP d = ops_.dbl(g);
  ops_.jac_add_mixed(j, ops_.neg(d));
  EXPECT_TRUE(ops_.to_affine(j).inf);
  // P + P through the mixed-add path.
  j = ops_.to_jacobian(g);
  ops_.jac_add_mixed(j, g);
  EXPECT_TRUE(ops_.eq(ops_.to_affine(j), d));
}

TEST_P(PrimeCurveTest, WnafMatchesNaive) {
  Rng rng(3);
  const AffinePointP g = ops_.generator();
  for (unsigned w : {2u, 4u, 5u}) {
    const UInt k = UInt::random_below(rng, UInt::pow2(64));
    EXPECT_TRUE(
        ops_.eq(mul_wnaf_p(ops_, g, k, w), mul_naive_p(ops_, g, k)));
  }
}

TEST_P(PrimeCurveTest, OrderTimesGeneratorIsInfinity) {
  const auto& c = *GetParam();
  PrimeCurveOps ops(c);
  EXPECT_TRUE(mul_wnaf_p(ops, ops.generator(), c.order, 4).inf);
  EXPECT_TRUE(ops.eq(mul_wnaf_p(ops, ops.generator(), c.order - UInt{1}, 4),
                     ops.neg(ops.generator())));
}

TEST_P(PrimeCurveTest, JacobianOpCosts) {
  const AffinePointP g = ops_.generator();
  JacobianPoint j = ops_.to_jacobian(g);
  ops_.jac_double(j);  // non-trivial Z
  ops_.reset_counts();
  ops_.jac_double(j);
  EXPECT_EQ(ops_.counts().mul, 3u);
  EXPECT_EQ(ops_.counts().sqr, 5u);
  ops_.reset_counts();
  ops_.jac_add_mixed(j, g);
  EXPECT_EQ(ops_.counts().mul, 8u);
  EXPECT_EQ(ops_.counts().sqr, 3u);
}

INSTANTIATE_TEST_SUITE_P(Curves, PrimeCurveTest,
                         ::testing::Values(&PrimeCurve::secp192r1(),
                                           &PrimeCurve::secp224r1(),
                                           &PrimeCurve::secp256r1()),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

TEST(PrimeCosting, ScalesWithFieldSize) {
  Rng rng(4);
  const UInt k192 = UInt::random_below(rng, PrimeCurve::secp192r1().order);
  const UInt k256 = UInt::random_below(rng, PrimeCurve::secp256r1().order);
  const auto r192 = cost_point_mul_p(PrimeCurve::secp192r1(), k192, 4);
  const auto r256 = cost_point_mul_p(PrimeCurve::secp256r1(), k256, 4);
  EXPECT_GT(r256.cycles, r192.cycles);
  // Micro ECC's measured ratio (Table 4) is 465/176 = 2.6; the model's
  // asymptotic is (8/6)^2 * (256/192) = 2.37 — same neighbourhood.
  const double ratio = static_cast<double>(r256.cycles) /
                       static_cast<double>(r192.cycles);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 3.0);
}

TEST(PrimeCosting, Secp192CyclesInMiraclBand) {
  // MIRACL on the ARM7: 38 ms @ 80 MHz = 3.0M cycles for secp192r1.
  Rng rng(5);
  const UInt k = UInt::random_below(rng, PrimeCurve::secp192r1().order);
  const auto r = cost_point_mul_p(PrimeCurve::secp192r1(), k, 4);
  EXPECT_GT(r.cycles, 1'500'000u);
  EXPECT_LT(r.cycles, 6'000'000u);
}

TEST(PrimeCosting, PrimeMixIsHungrierThanBinaryMix) {
  // Conclusion (2) of the paper's model: the MUL/ADD mix of prime fields
  // burns more energy per cycle than the XOR/shift/load mix of binary
  // fields (which measures ~11.5 pJ/cycle on the VM kernels).
  EXPECT_GT(prime_mix_pj_per_cycle(), 12.0);
  EXPECT_LT(prime_mix_pj_per_cycle(), 13.45);  // below pure-ADD
}

TEST(PrimeCosting, ResultStaysCorrect) {
  Rng rng(6);
  const auto& c = PrimeCurve::secp224r1();
  const UInt k = UInt::random_below(rng, UInt::pow2(48));
  PrimeCurveOps ops(c);
  const auto run = cost_point_mul_p(c, k, 4);
  EXPECT_TRUE(ops.eq(run.result, mul_naive_p(ops, ops.generator(), k)));
}

}  // namespace
}  // namespace eccm0::ecp
