file(REMOVE_RECURSE
  "CMakeFiles/sign_verify.dir/sign_verify.cpp.o"
  "CMakeFiles/sign_verify.dir/sign_verify.cpp.o.d"
  "sign_verify"
  "sign_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sign_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
