# Empty dependencies file for sign_verify.
# This may be replaced when dependencies are built.
