# Empty compiler generated dependencies file for asm_vm_tour.
# This may be replaced when dependencies are built.
