file(REMOVE_RECURSE
  "CMakeFiles/asm_vm_tour.dir/asm_vm_tour.cpp.o"
  "CMakeFiles/asm_vm_tour.dir/asm_vm_tour.cpp.o.d"
  "asm_vm_tour"
  "asm_vm_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_vm_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
