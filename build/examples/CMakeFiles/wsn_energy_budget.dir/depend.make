# Empty dependencies file for wsn_energy_budget.
# This may be replaced when dependencies are built.
