file(REMOVE_RECURSE
  "CMakeFiles/wsn_energy_budget.dir/wsn_energy_budget.cpp.o"
  "CMakeFiles/wsn_energy_budget.dir/wsn_energy_budget.cpp.o.d"
  "wsn_energy_budget"
  "wsn_energy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsn_energy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
