file(REMOVE_RECURSE
  "CMakeFiles/ecctool.dir/ecctool.cpp.o"
  "CMakeFiles/ecctool.dir/ecctool.cpp.o.d"
  "ecctool"
  "ecctool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecctool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
