# Empty compiler generated dependencies file for ecctool.
# This may be replaced when dependencies are built.
