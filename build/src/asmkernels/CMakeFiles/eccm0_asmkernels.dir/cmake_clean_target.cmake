file(REMOVE_RECURSE
  "libeccm0_asmkernels.a"
)
