# Empty compiler generated dependencies file for eccm0_asmkernels.
# This may be replaced when dependencies are built.
