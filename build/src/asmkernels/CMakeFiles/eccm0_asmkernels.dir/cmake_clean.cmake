file(REMOVE_RECURSE
  "CMakeFiles/eccm0_asmkernels.dir/gen.cpp.o"
  "CMakeFiles/eccm0_asmkernels.dir/gen.cpp.o.d"
  "CMakeFiles/eccm0_asmkernels.dir/runner.cpp.o"
  "CMakeFiles/eccm0_asmkernels.dir/runner.cpp.o.d"
  "libeccm0_asmkernels.a"
  "libeccm0_asmkernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_asmkernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
