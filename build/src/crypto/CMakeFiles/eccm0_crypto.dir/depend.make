# Empty dependencies file for eccm0_crypto.
# This may be replaced when dependencies are built.
