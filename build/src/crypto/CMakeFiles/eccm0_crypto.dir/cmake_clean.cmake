file(REMOVE_RECURSE
  "CMakeFiles/eccm0_crypto.dir/ecdh.cpp.o"
  "CMakeFiles/eccm0_crypto.dir/ecdh.cpp.o.d"
  "CMakeFiles/eccm0_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/eccm0_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/eccm0_crypto.dir/hmac.cpp.o"
  "CMakeFiles/eccm0_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/eccm0_crypto.dir/sha256.cpp.o"
  "CMakeFiles/eccm0_crypto.dir/sha256.cpp.o.d"
  "libeccm0_crypto.a"
  "libeccm0_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
