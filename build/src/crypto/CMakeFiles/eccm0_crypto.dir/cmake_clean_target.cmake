file(REMOVE_RECURSE
  "libeccm0_crypto.a"
)
