file(REMOVE_RECURSE
  "CMakeFiles/eccm0_measure.dir/power_trace.cpp.o"
  "CMakeFiles/eccm0_measure.dir/power_trace.cpp.o.d"
  "libeccm0_measure.a"
  "libeccm0_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
