file(REMOVE_RECURSE
  "libeccm0_measure.a"
)
