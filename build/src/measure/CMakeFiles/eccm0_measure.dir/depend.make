# Empty dependencies file for eccm0_measure.
# This may be replaced when dependencies are built.
