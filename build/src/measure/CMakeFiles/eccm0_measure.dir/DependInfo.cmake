
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/power_trace.cpp" "src/measure/CMakeFiles/eccm0_measure.dir/power_trace.cpp.o" "gcc" "src/measure/CMakeFiles/eccm0_measure.dir/power_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/armvm/CMakeFiles/eccm0_armvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
