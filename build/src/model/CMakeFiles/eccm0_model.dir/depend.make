# Empty dependencies file for eccm0_model.
# This may be replaced when dependencies are built.
