file(REMOVE_RECURSE
  "libeccm0_model.a"
)
