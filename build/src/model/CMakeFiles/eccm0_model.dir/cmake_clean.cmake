file(REMOVE_RECURSE
  "CMakeFiles/eccm0_model.dir/curve_selection.cpp.o"
  "CMakeFiles/eccm0_model.dir/curve_selection.cpp.o.d"
  "libeccm0_model.a"
  "libeccm0_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
