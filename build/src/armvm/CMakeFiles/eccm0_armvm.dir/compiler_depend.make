# Empty compiler generated dependencies file for eccm0_armvm.
# This may be replaced when dependencies are built.
