file(REMOVE_RECURSE
  "CMakeFiles/eccm0_armvm.dir/asm.cpp.o"
  "CMakeFiles/eccm0_armvm.dir/asm.cpp.o.d"
  "CMakeFiles/eccm0_armvm.dir/codec.cpp.o"
  "CMakeFiles/eccm0_armvm.dir/codec.cpp.o.d"
  "CMakeFiles/eccm0_armvm.dir/cpu.cpp.o"
  "CMakeFiles/eccm0_armvm.dir/cpu.cpp.o.d"
  "CMakeFiles/eccm0_armvm.dir/isa.cpp.o"
  "CMakeFiles/eccm0_armvm.dir/isa.cpp.o.d"
  "libeccm0_armvm.a"
  "libeccm0_armvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_armvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
