file(REMOVE_RECURSE
  "libeccm0_armvm.a"
)
