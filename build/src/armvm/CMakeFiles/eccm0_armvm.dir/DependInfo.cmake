
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/armvm/asm.cpp" "src/armvm/CMakeFiles/eccm0_armvm.dir/asm.cpp.o" "gcc" "src/armvm/CMakeFiles/eccm0_armvm.dir/asm.cpp.o.d"
  "/root/repo/src/armvm/codec.cpp" "src/armvm/CMakeFiles/eccm0_armvm.dir/codec.cpp.o" "gcc" "src/armvm/CMakeFiles/eccm0_armvm.dir/codec.cpp.o.d"
  "/root/repo/src/armvm/cpu.cpp" "src/armvm/CMakeFiles/eccm0_armvm.dir/cpu.cpp.o" "gcc" "src/armvm/CMakeFiles/eccm0_armvm.dir/cpu.cpp.o.d"
  "/root/repo/src/armvm/isa.cpp" "src/armvm/CMakeFiles/eccm0_armvm.dir/isa.cpp.o" "gcc" "src/armvm/CMakeFiles/eccm0_armvm.dir/isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
