# Empty dependencies file for eccm0_common.
# This may be replaced when dependencies are built.
