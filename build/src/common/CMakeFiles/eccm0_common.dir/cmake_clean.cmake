file(REMOVE_RECURSE
  "CMakeFiles/eccm0_common.dir/hex.cpp.o"
  "CMakeFiles/eccm0_common.dir/hex.cpp.o.d"
  "libeccm0_common.a"
  "libeccm0_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
