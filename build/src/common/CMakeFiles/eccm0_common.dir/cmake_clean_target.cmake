file(REMOVE_RECURSE
  "libeccm0_common.a"
)
