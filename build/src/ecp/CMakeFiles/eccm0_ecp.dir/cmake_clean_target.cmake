file(REMOVE_RECURSE
  "libeccm0_ecp.a"
)
