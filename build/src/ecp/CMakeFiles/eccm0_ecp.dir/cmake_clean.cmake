file(REMOVE_RECURSE
  "CMakeFiles/eccm0_ecp.dir/costing.cpp.o"
  "CMakeFiles/eccm0_ecp.dir/costing.cpp.o.d"
  "CMakeFiles/eccm0_ecp.dir/curve.cpp.o"
  "CMakeFiles/eccm0_ecp.dir/curve.cpp.o.d"
  "CMakeFiles/eccm0_ecp.dir/ops.cpp.o"
  "CMakeFiles/eccm0_ecp.dir/ops.cpp.o.d"
  "libeccm0_ecp.a"
  "libeccm0_ecp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_ecp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
