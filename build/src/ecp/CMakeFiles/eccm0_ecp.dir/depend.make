# Empty dependencies file for eccm0_ecp.
# This may be replaced when dependencies are built.
