file(REMOVE_RECURSE
  "libeccm0_ec.a"
)
