file(REMOVE_RECURSE
  "CMakeFiles/eccm0_ec.dir/codec.cpp.o"
  "CMakeFiles/eccm0_ec.dir/codec.cpp.o.d"
  "CMakeFiles/eccm0_ec.dir/costing.cpp.o"
  "CMakeFiles/eccm0_ec.dir/costing.cpp.o.d"
  "CMakeFiles/eccm0_ec.dir/curve.cpp.o"
  "CMakeFiles/eccm0_ec.dir/curve.cpp.o.d"
  "CMakeFiles/eccm0_ec.dir/ops.cpp.o"
  "CMakeFiles/eccm0_ec.dir/ops.cpp.o.d"
  "CMakeFiles/eccm0_ec.dir/scalarmul.cpp.o"
  "CMakeFiles/eccm0_ec.dir/scalarmul.cpp.o.d"
  "CMakeFiles/eccm0_ec.dir/tnaf.cpp.o"
  "CMakeFiles/eccm0_ec.dir/tnaf.cpp.o.d"
  "libeccm0_ec.a"
  "libeccm0_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
