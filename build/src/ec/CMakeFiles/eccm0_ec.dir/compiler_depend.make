# Empty compiler generated dependencies file for eccm0_ec.
# This may be replaced when dependencies are built.
