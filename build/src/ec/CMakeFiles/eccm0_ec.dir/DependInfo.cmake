
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/codec.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/codec.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/codec.cpp.o.d"
  "/root/repo/src/ec/costing.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/costing.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/costing.cpp.o.d"
  "/root/repo/src/ec/curve.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/curve.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/curve.cpp.o.d"
  "/root/repo/src/ec/ops.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/ops.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/ops.cpp.o.d"
  "/root/repo/src/ec/scalarmul.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/scalarmul.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/scalarmul.cpp.o.d"
  "/root/repo/src/ec/tnaf.cpp" "src/ec/CMakeFiles/eccm0_ec.dir/tnaf.cpp.o" "gcc" "src/ec/CMakeFiles/eccm0_ec.dir/tnaf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf2/CMakeFiles/eccm0_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/mpint/CMakeFiles/eccm0_mpint.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
