file(REMOVE_RECURSE
  "CMakeFiles/eccm0_mpint.dir/barrett.cpp.o"
  "CMakeFiles/eccm0_mpint.dir/barrett.cpp.o.d"
  "CMakeFiles/eccm0_mpint.dir/montgomery.cpp.o"
  "CMakeFiles/eccm0_mpint.dir/montgomery.cpp.o.d"
  "CMakeFiles/eccm0_mpint.dir/sint.cpp.o"
  "CMakeFiles/eccm0_mpint.dir/sint.cpp.o.d"
  "CMakeFiles/eccm0_mpint.dir/uint.cpp.o"
  "CMakeFiles/eccm0_mpint.dir/uint.cpp.o.d"
  "libeccm0_mpint.a"
  "libeccm0_mpint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_mpint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
