
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpint/barrett.cpp" "src/mpint/CMakeFiles/eccm0_mpint.dir/barrett.cpp.o" "gcc" "src/mpint/CMakeFiles/eccm0_mpint.dir/barrett.cpp.o.d"
  "/root/repo/src/mpint/montgomery.cpp" "src/mpint/CMakeFiles/eccm0_mpint.dir/montgomery.cpp.o" "gcc" "src/mpint/CMakeFiles/eccm0_mpint.dir/montgomery.cpp.o.d"
  "/root/repo/src/mpint/sint.cpp" "src/mpint/CMakeFiles/eccm0_mpint.dir/sint.cpp.o" "gcc" "src/mpint/CMakeFiles/eccm0_mpint.dir/sint.cpp.o.d"
  "/root/repo/src/mpint/uint.cpp" "src/mpint/CMakeFiles/eccm0_mpint.dir/uint.cpp.o" "gcc" "src/mpint/CMakeFiles/eccm0_mpint.dir/uint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
