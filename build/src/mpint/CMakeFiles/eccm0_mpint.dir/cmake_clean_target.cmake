file(REMOVE_RECURSE
  "libeccm0_mpint.a"
)
