# Empty compiler generated dependencies file for eccm0_mpint.
# This may be replaced when dependencies are built.
