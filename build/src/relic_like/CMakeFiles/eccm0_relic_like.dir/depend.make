# Empty dependencies file for eccm0_relic_like.
# This may be replaced when dependencies are built.
