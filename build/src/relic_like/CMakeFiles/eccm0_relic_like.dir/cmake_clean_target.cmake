file(REMOVE_RECURSE
  "libeccm0_relic_like.a"
)
