file(REMOVE_RECURSE
  "CMakeFiles/eccm0_relic_like.dir/baseline.cpp.o"
  "CMakeFiles/eccm0_relic_like.dir/baseline.cpp.o.d"
  "CMakeFiles/eccm0_relic_like.dir/costs.cpp.o"
  "CMakeFiles/eccm0_relic_like.dir/costs.cpp.o.d"
  "libeccm0_relic_like.a"
  "libeccm0_relic_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_relic_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
