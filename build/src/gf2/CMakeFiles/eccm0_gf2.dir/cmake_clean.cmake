file(REMOVE_RECURSE
  "CMakeFiles/eccm0_gf2.dir/field.cpp.o"
  "CMakeFiles/eccm0_gf2.dir/field.cpp.o.d"
  "CMakeFiles/eccm0_gf2.dir/k233.cpp.o"
  "CMakeFiles/eccm0_gf2.dir/k233.cpp.o.d"
  "CMakeFiles/eccm0_gf2.dir/poly.cpp.o"
  "CMakeFiles/eccm0_gf2.dir/poly.cpp.o.d"
  "CMakeFiles/eccm0_gf2.dir/traced.cpp.o"
  "CMakeFiles/eccm0_gf2.dir/traced.cpp.o.d"
  "libeccm0_gf2.a"
  "libeccm0_gf2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eccm0_gf2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
