file(REMOVE_RECURSE
  "libeccm0_gf2.a"
)
