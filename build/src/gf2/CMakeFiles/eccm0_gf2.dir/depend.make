# Empty dependencies file for eccm0_gf2.
# This may be replaced when dependencies are built.
