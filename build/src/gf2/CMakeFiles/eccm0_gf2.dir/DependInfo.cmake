
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf2/field.cpp" "src/gf2/CMakeFiles/eccm0_gf2.dir/field.cpp.o" "gcc" "src/gf2/CMakeFiles/eccm0_gf2.dir/field.cpp.o.d"
  "/root/repo/src/gf2/k233.cpp" "src/gf2/CMakeFiles/eccm0_gf2.dir/k233.cpp.o" "gcc" "src/gf2/CMakeFiles/eccm0_gf2.dir/k233.cpp.o.d"
  "/root/repo/src/gf2/poly.cpp" "src/gf2/CMakeFiles/eccm0_gf2.dir/poly.cpp.o" "gcc" "src/gf2/CMakeFiles/eccm0_gf2.dir/poly.cpp.o.d"
  "/root/repo/src/gf2/traced.cpp" "src/gf2/CMakeFiles/eccm0_gf2.dir/traced.cpp.o" "gcc" "src/gf2/CMakeFiles/eccm0_gf2.dir/traced.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
