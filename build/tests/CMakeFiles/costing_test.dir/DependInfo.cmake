
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/relic_like/costing_test.cpp" "tests/CMakeFiles/costing_test.dir/relic_like/costing_test.cpp.o" "gcc" "tests/CMakeFiles/costing_test.dir/relic_like/costing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relic_like/CMakeFiles/eccm0_relic_like.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/eccm0_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/mpint/CMakeFiles/eccm0_mpint.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkernels/CMakeFiles/eccm0_asmkernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gf2/CMakeFiles/eccm0_gf2.dir/DependInfo.cmake"
  "/root/repo/build/src/armvm/CMakeFiles/eccm0_armvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eccm0_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
