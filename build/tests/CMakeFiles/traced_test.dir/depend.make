# Empty dependencies file for traced_test.
# This may be replaced when dependencies are built.
