file(REMOVE_RECURSE
  "CMakeFiles/traced_test.dir/gf2/traced_test.cpp.o"
  "CMakeFiles/traced_test.dir/gf2/traced_test.cpp.o.d"
  "traced_test"
  "traced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
