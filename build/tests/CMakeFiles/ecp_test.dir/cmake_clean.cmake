file(REMOVE_RECURSE
  "CMakeFiles/ecp_test.dir/ecp/ecp_test.cpp.o"
  "CMakeFiles/ecp_test.dir/ecp/ecp_test.cpp.o.d"
  "ecp_test"
  "ecp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
