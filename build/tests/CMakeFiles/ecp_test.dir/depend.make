# Empty dependencies file for ecp_test.
# This may be replaced when dependencies are built.
