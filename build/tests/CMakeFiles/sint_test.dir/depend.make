# Empty dependencies file for sint_test.
# This may be replaced when dependencies are built.
