file(REMOVE_RECURSE
  "CMakeFiles/sint_test.dir/mpint/sint_test.cpp.o"
  "CMakeFiles/sint_test.dir/mpint/sint_test.cpp.o.d"
  "sint_test"
  "sint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
