# Empty compiler generated dependencies file for point_codec_test.
# This may be replaced when dependencies are built.
