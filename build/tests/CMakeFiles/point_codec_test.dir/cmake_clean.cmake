file(REMOVE_RECURSE
  "CMakeFiles/point_codec_test.dir/ec/codec_test.cpp.o"
  "CMakeFiles/point_codec_test.dir/ec/codec_test.cpp.o.d"
  "point_codec_test"
  "point_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/point_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
