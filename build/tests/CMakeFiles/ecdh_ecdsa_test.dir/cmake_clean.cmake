file(REMOVE_RECURSE
  "CMakeFiles/ecdh_ecdsa_test.dir/crypto/ecdh_ecdsa_test.cpp.o"
  "CMakeFiles/ecdh_ecdsa_test.dir/crypto/ecdh_ecdsa_test.cpp.o.d"
  "ecdh_ecdsa_test"
  "ecdh_ecdsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdh_ecdsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
