# Empty dependencies file for ecdh_ecdsa_test.
# This may be replaced when dependencies are built.
