file(REMOVE_RECURSE
  "CMakeFiles/barrett_test.dir/mpint/barrett_test.cpp.o"
  "CMakeFiles/barrett_test.dir/mpint/barrett_test.cpp.o.d"
  "barrett_test"
  "barrett_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrett_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
