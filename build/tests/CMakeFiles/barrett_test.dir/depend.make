# Empty dependencies file for barrett_test.
# This may be replaced when dependencies are built.
