file(REMOVE_RECURSE
  "CMakeFiles/scalarmul_test.dir/ec/scalarmul_test.cpp.o"
  "CMakeFiles/scalarmul_test.dir/ec/scalarmul_test.cpp.o.d"
  "scalarmul_test"
  "scalarmul_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalarmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
