# Empty dependencies file for scalarmul_test.
# This may be replaced when dependencies are built.
