file(REMOVE_RECURSE
  "CMakeFiles/curve_test.dir/ec/curve_test.cpp.o"
  "CMakeFiles/curve_test.dir/ec/curve_test.cpp.o.d"
  "curve_test"
  "curve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
