# Empty compiler generated dependencies file for tnaf_test.
# This may be replaced when dependencies are built.
