file(REMOVE_RECURSE
  "CMakeFiles/tnaf_test.dir/ec/tnaf_test.cpp.o"
  "CMakeFiles/tnaf_test.dir/ec/tnaf_test.cpp.o.d"
  "tnaf_test"
  "tnaf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
