# Empty compiler generated dependencies file for uint_test.
# This may be replaced when dependencies are built.
