file(REMOVE_RECURSE
  "CMakeFiles/uint_test.dir/mpint/uint_test.cpp.o"
  "CMakeFiles/uint_test.dir/mpint/uint_test.cpp.o.d"
  "uint_test"
  "uint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
