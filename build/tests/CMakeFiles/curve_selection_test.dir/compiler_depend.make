# Empty compiler generated dependencies file for curve_selection_test.
# This may be replaced when dependencies are built.
