file(REMOVE_RECURSE
  "CMakeFiles/curve_selection_test.dir/model/curve_selection_test.cpp.o"
  "CMakeFiles/curve_selection_test.dir/model/curve_selection_test.cpp.o.d"
  "curve_selection_test"
  "curve_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
