file(REMOVE_RECURSE
  "CMakeFiles/k233_test.dir/gf2/k233_test.cpp.o"
  "CMakeFiles/k233_test.dir/gf2/k233_test.cpp.o.d"
  "k233_test"
  "k233_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k233_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
