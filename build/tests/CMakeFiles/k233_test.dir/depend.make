# Empty dependencies file for k233_test.
# This may be replaced when dependencies are built.
