# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_table1 "/root/repo/build/bench/bench_table1")
set_tests_properties(smoke_bench_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table2 "/root/repo/build/bench/bench_table2")
set_tests_properties(smoke_bench_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table3 "/root/repo/build/bench/bench_table3")
set_tests_properties(smoke_bench_table3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table4 "/root/repo/build/bench/bench_table4")
set_tests_properties(smoke_bench_table4 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table5 "/root/repo/build/bench/bench_table5")
set_tests_properties(smoke_bench_table5 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table6 "/root/repo/build/bench/bench_table6")
set_tests_properties(smoke_bench_table6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_table7 "/root/repo/build/bench/bench_table7")
set_tests_properties(smoke_bench_table7 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig1 "/root/repo/build/bench/bench_fig1")
set_tests_properties(smoke_bench_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_curve_selection "/root/repo/build/bench/bench_curve_selection")
set_tests_properties(smoke_bench_curve_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation_window "/root/repo/build/bench/bench_ablation_window")
set_tests_properties(smoke_bench_ablation_window PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ladder "/root/repo/build/bench/bench_ladder")
set_tests_properties(smoke_bench_ladder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;31;add_test;/root/repo/bench/CMakeLists.txt;0;")
