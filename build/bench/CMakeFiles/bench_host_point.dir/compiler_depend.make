# Empty compiler generated dependencies file for bench_host_point.
# This may be replaced when dependencies are built.
