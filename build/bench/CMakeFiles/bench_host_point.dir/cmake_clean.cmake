file(REMOVE_RECURSE
  "CMakeFiles/bench_host_point.dir/bench_host_point.cpp.o"
  "CMakeFiles/bench_host_point.dir/bench_host_point.cpp.o.d"
  "bench_host_point"
  "bench_host_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
