file(REMOVE_RECURSE
  "CMakeFiles/bench_curve_selection.dir/bench_curve_selection.cpp.o"
  "CMakeFiles/bench_curve_selection.dir/bench_curve_selection.cpp.o.d"
  "bench_curve_selection"
  "bench_curve_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_curve_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
