# Empty dependencies file for bench_curve_selection.
# This may be replaced when dependencies are built.
