file(REMOVE_RECURSE
  "CMakeFiles/bench_host_field.dir/bench_host_field.cpp.o"
  "CMakeFiles/bench_host_field.dir/bench_host_field.cpp.o.d"
  "bench_host_field"
  "bench_host_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
