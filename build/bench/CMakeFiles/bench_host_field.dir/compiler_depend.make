# Empty compiler generated dependencies file for bench_host_field.
# This may be replaced when dependencies are built.
