# Empty dependencies file for bench_ladder.
# This may be replaced when dependencies are built.
