file(REMOVE_RECURSE
  "CMakeFiles/bench_ladder.dir/bench_ladder.cpp.o"
  "CMakeFiles/bench_ladder.dir/bench_ladder.cpp.o.d"
  "bench_ladder"
  "bench_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
