// Wireless-sensor-node energy budget — the scenario from the paper's
// introduction: "a node's lifetime is directly influenced by the amount
// of energy that it uses to perform computations".
//
// A node runs on a CR2032 coin cell (~225 mAh @ 3 V ~= 2430 J) and
// performs one ECDH key agreement per reporting interval. How many
// agreements does each implementation buy, and what fraction of the
// battery does a year of hourly rekeying cost?
#include <cstdio>

#include "common/rng.h"
#include "ecp/costing.h"
#include "relic_like/baseline.h"

using namespace eccm0;
using mpint::UInt;

namespace {

constexpr double kBatteryJ = 2430.0;  // CR2032: 225 mAh x 3 V
constexpr double kYearHours = 24 * 365.0;

void report(const char* name, double uj_per_agreement) {
  const double agreements = kBatteryJ / (uj_per_agreement * 1e-6);
  const double year_fraction =
      kYearHours * uj_per_agreement * 1e-6 / kBatteryJ;
  std::printf("%-28s %10.2f uJ  %12.0f agreements/battery  %8.5f%% of "
              "battery per year of hourly rekeying\n",
              name, uj_per_agreement, agreements, 100.0 * year_fraction);
}

}  // namespace

int main() {
  std::printf("WSN node energy budget (CR2032, %.0f J usable)\n\n",
              kBatteryJ);
  std::printf("One ECDH agreement = one kG (ephemeral key) + one kP "
              "(shared secret):\n\n");

  Rng rng(0x5E2);
  const auto& k233 = ec::BinaryCurve::sect233k1();
  const auto g = ec::AffinePoint::make(k233.gx, k233.gy);
  const UInt k = UInt::random_below(rng, k233.order);

  const auto& ours = relic_like::proposed_asm_costs();
  const auto our_kg = ec::cost_point_mul(k233, g, k, 6, true, ours);
  const auto our_kp = ec::cost_point_mul(k233, g, k, 4, false, ours);
  report("this work (K-233)",
         our_kg.energy_uj(ours) + our_kp.energy_uj(ours));

  const relic_like::RelicBaseline relic;
  const auto& rt = relic_like::relic_like_costs();
  report("RELIC-like (K-233)",
         relic.kg(k).energy_uj(rt) + relic.kp(g, k).energy_uj(rt));

  const auto& p224 = ecp::PrimeCurve::secp224r1();
  Rng prng(0x5E3);
  const UInt pk = UInt::random_below(prng, p224.order);
  const auto prun = ecp::cost_point_mul_p(p224, pk, 4);
  const auto pcosts = ecp::m0plus_prime_costs(p224.limbs());
  report("prime wNAF model (P-224)", 2.0 * prun.energy_uj(pcosts));

  std::printf(
      "\nFor scale, the paper's strongest literature comparator (Micro ECC\n"
      "secp192r1, 134.9 uJ per point multiplication) would spend %.1f uJ\n"
      "per agreement — the energy argument for the Koblitz/M0+ design.\n",
      2 * 134.9);
  return 0;
}
