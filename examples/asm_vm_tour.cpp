// A tour of the Cortex-M0+ substrate: assemble a small Thumb routine,
// run it with cycle/energy accounting, then run the paper's LD-with-
// fixed-registers kernel and print its measured profile — everything the
// paper did with a scope and a dev board, on the simulator.
#include <cstdio>

#include "armvm/asm.h"
#include "armvm/codec.h"
#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "workloads/registry.h"
#include "workloads/runner.h"
#include "common/rng.h"
#include "measure/power_trace.h"

using namespace eccm0;

int main() {
  // --- 1. Hand-written Thumb: sum of squares 1..n ---------------------
  const char* src = R"(
sum_sq:  movs r1, #0        ; acc
loop:    movs r2, r0
         muls r2, r2
         adds r1, r1, r2
         subs r0, #1
         bne loop
         movs r0, r1
         bx lr
)";
  const armvm::ProgramRef prog = armvm::assemble(src);
  armvm::Memory mem(1 << 12);
  armvm::Cpu cpu(prog, mem);
  const auto stats = cpu.call(prog->entry("sum_sq"), {10});
  std::printf("sum of squares 1..10 = %u (expect 385)\n", cpu.reg(0));
  std::printf("  %llu instructions, %llu cycles, %.1f pJ\n\n",
              static_cast<unsigned long long>(stats.instructions),
              static_cast<unsigned long long>(stats.cycles),
              stats.energy().energy_pj);

  // --- 2. Disassemble the first lines of the generated mul kernel -----
  const armvm::ProgramRef mul_prog = workloads::kernel("mul");
  std::printf("LD-with-fixed-registers kernel, first 12 instructions:\n");
  std::size_t idx = 0;
  for (int i = 0; i < 12; ++i) {
    const auto d = armvm::decode(mul_prog->code(), idx);
    std::printf("  %04zx: %s\n", 2 * idx, armvm::disassemble(d.ins).c_str());
    idx += d.halfwords;
  }
  std::printf("  ... (%zu bytes total)\n\n", 2 * mul_prog->code().size());

  // --- 3. Run it, with the power rig attached -------------------------
  asmkernels::KernelVm vm;
  Rng rng(7);
  gf2::k233::Fe x, y;
  rng.fill(x);
  rng.fill(y);
  x[7] &= gf2::k233::kTopMask;
  y[7] &= gf2::k233::kTopMask;
  const auto run = vm.mul(asmkernels::MulKernel::kFixedRegisters, x, y, true);
  const auto energy = run.stats.energy();
  std::printf("modular multiplication in F(2^233), measured on the VM:\n");
  std::printf("  cycles       : %llu (paper: 3672)\n",
              static_cast<unsigned long long>(run.stats.cycles));
  std::printf("  energy       : %.1f pJ (%.3f pJ/cycle)\n",
              energy.energy_pj,
              energy.energy_pj / static_cast<double>(energy.cycles));
  std::printf("  time @48 MHz : %.2f us\n", energy.time_ms() * 1e3);
  std::printf("  avg power    : %.1f uW (paper band: 520-600 uW)\n\n",
              energy.avg_power_uw());

  using costmodel::InstrClass;
  const char* names[] = {"LDR", "STR", "LSL", "LSR", "EOR",
                         "ADD", "MUL", "MOV", "B",   "other"};
  std::printf("cycle histogram:\n");
  for (int i = 0; i < static_cast<int>(InstrClass::kCount); ++i) {
    const auto cy = run.stats.histogram.cycles[i];
    if (cy == 0) continue;
    std::printf("  %-6s %6llu cycles  %s\n", names[i],
                static_cast<unsigned long long>(cy),
                std::string(static_cast<std::size_t>(
                                60 * cy / run.stats.cycles),
                            '#')
                    .c_str());
  }
  return 0;
}
