// ecctool — command-line frontend over the whole stack: key generation,
// compressed-point serialization, ECDSA signatures and ECDH agreement on
// sect233k1.
//
//   ecctool keygen <seed>
//   ecctool sign   <priv-hex> <message...>
//   ecctool verify <pub-hex> <r-hex> <s-hex> <message...>
//   ecctool ecdh   <priv-hex> <peer-pub-hex>
//   ecctool info
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/ecdsa.h"
#include "ec/codec.h"

using namespace eccm0;

namespace {

std::vector<std::uint8_t> hex_to_bytes(const std::string& h) {
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("bad hex digit");
  };
  if (h.size() % 2) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < h.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nib(h[i]) << 4 | nib(h[i + 1])));
  }
  return out;
}

std::string bytes_to_hex(std::span<const std::uint8_t> b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (auto x : b) {
    s += d[x >> 4];
    s += d[x & 0xF];
  }
  return s;
}

std::string join_args(int argc, char** argv, int from) {
  std::string m;
  for (int i = from; i < argc; ++i) {
    if (i > from) m += " ";
    m += argv[i];
  }
  return m;
}

int usage() {
  std::fprintf(stderr,
               "usage: ecctool keygen <seed>\n"
               "       ecctool sign <priv-hex> <message...>\n"
               "       ecctool verify <pub-hex> <r-hex> <s-hex> <message...>\n"
               "       ecctool ecdh <priv-hex> <peer-pub-hex>\n"
               "       ecctool info\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const crypto::Ecdsa ecdsa;
  const crypto::Ecdh ecdh;
  const auto& curve = ecdsa.curve();
  ec::CurveOps ops(curve);

  try {
    if (cmd == "info") {
      std::printf("curve     : %s (Koblitz, F(2^%u), a=0, b=1, h=%u)\n",
                  curve.name.c_str(), curve.f().m(), curve.cofactor);
      std::printf("order     : %s\n", curve.order.to_hex().c_str());
      std::printf("generator : %s\n",
                  bytes_to_hex(ec::encode_point(
                                   curve,
                                   ec::AffinePoint::make(curve.gx, curve.gy),
                                   true))
                      .c_str());
      return 0;
    }
    if (cmd == "keygen") {
      if (argc < 3) return usage();
      const std::string seed_str = argv[2];
      std::vector<std::uint8_t> seed(seed_str.begin(), seed_str.end());
      crypto::HmacDrbg rng(seed);
      const crypto::KeyPair kp = ecdsa.generate(rng);
      std::printf("private: %s\n", kp.d.to_hex().c_str());
      std::printf("public : %s\n",
                  bytes_to_hex(ec::encode_point(curve, kp.q, true)).c_str());
      return 0;
    }
    if (cmd == "sign") {
      if (argc < 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const std::string msg = join_args(argc, argv, 3);
      const crypto::Signature sig = ecdsa.sign(d, msg);
      std::printf("r: %s\n", sig.r.to_hex().c_str());
      std::printf("s: %s\n", sig.s.to_hex().c_str());
      return 0;
    }
    if (cmd == "verify") {
      if (argc < 6) return usage();
      const ec::AffinePoint q =
          ec::decode_point(ops, hex_to_bytes(argv[2]));
      const crypto::Signature sig{mpint::UInt::from_hex(argv[3]),
                                  mpint::UInt::from_hex(argv[4])};
      const std::string msg = join_args(argc, argv, 5);
      const bool ok = ecdsa.verify(q, msg, sig);
      std::printf("%s\n", ok ? "VALID" : "INVALID");
      return ok ? 0 : 1;
    }
    if (cmd == "ecdh") {
      if (argc != 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const ec::AffinePoint peer =
          ec::decode_point(ops, hex_to_bytes(argv[3]));
      if (!ecdh.valid_public_key(peer)) {
        std::fprintf(stderr, "peer public key failed validation\n");
        return 1;
      }
      const auto secret = ecdh.shared_secret(d, peer);
      std::printf("secret: %s\n", crypto::to_hex(secret).c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
