// ecctool — command-line frontend over the whole stack: key generation,
// compressed-point serialization, ECDSA signatures and ECDH agreement on
// sect233k1.
//
//   ecctool keygen  <seed>
//   ecctool sign    <priv-hex> <message...>
//   ecctool verify  <pub-hex> <r-hex> <s-hex> <message...>
//   ecctool ecdh    <priv-hex> <peer-pub-hex>
//   ecctool info
//   ecctool profile [mul|mul-plain|sqr|inv] [--calls N]
//
// `profile` runs a K-233 field kernel on the cycle-accurate armvm with
// the symbol-attributed profiler and RAM heatmap attached, prints the
// per-function cycle/energy breakdown and the hottest RAM words, and
// writes ecctool_trace.json (Perfetto) + ecctool_flame.txt.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "armvm/asm.h"
#include "armvm/cpu.h"
#include "asmkernels/gen.h"
#include "common/rng.h"
#include "crypto/ecdsa.h"
#include "ec/codec.h"
#include "gf2/sqr_table.h"
#include "profile/heatmap.h"
#include "profile/profiler.h"
#include "profile/trace_export.h"

using namespace eccm0;

namespace {

std::vector<std::uint8_t> hex_to_bytes(const std::string& h) {
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("bad hex digit");
  };
  if (h.size() % 2) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < h.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nib(h[i]) << 4 | nib(h[i + 1])));
  }
  return out;
}

std::string bytes_to_hex(std::span<const std::uint8_t> b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (auto x : b) {
    s += d[x >> 4];
    s += d[x & 0xF];
  }
  return s;
}

std::string join_args(int argc, char** argv, int from) {
  std::string m;
  for (int i = from; i < argc; ++i) {
    if (i > from) m += " ";
    m += argv[i];
  }
  return m;
}

int usage() {
  std::fprintf(stderr,
               "usage: ecctool keygen <seed>\n"
               "       ecctool sign <priv-hex> <message...>\n"
               "       ecctool verify <pub-hex> <r-hex> <s-hex> <message...>\n"
               "       ecctool ecdh <priv-hex> <peer-pub-hex>\n"
               "       ecctool info\n"
               "       ecctool profile [mul|mul-plain|sqr|inv] [--calls N]\n");
  return 2;
}

int run_profile(int argc, char** argv) {
  constexpr std::size_t kRamSize = 0x800;
  std::string kernel = "mul";
  unsigned calls = 1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--calls") == 0 && i + 1 < argc) {
      calls = static_cast<unsigned>(std::atoi(argv[++i]));
      if (calls == 0) calls = 1;
    } else {
      kernel = argv[i];
    }
  }

  armvm::Program prog;
  if (kernel == "mul") {
    prog = armvm::assemble(asmkernels::gen_mul_fixed(true));
  } else if (kernel == "mul-plain") {
    prog = armvm::assemble(asmkernels::gen_mul_plain(true));
  } else if (kernel == "sqr") {
    prog = armvm::assemble(asmkernels::gen_sqr());
  } else if (kernel == "inv") {
    prog = armvm::assemble(asmkernels::gen_inv());
  } else {
    return usage();
  }

  armvm::Memory mem(kRamSize);
  armvm::Cpu cpu(prog.code, mem, armvm::Cpu::DecodeMode::kPredecode);
  profile::Profiler prof(prog);
  profile::MemHeatmap heat(kRamSize);
  profile::TeeSink tee({&prof, &heat});
  cpu.set_trace_sink(&tee);

  Rng rng(0xECC7001);
  std::uint32_t op[3][8];
  for (auto& v : op) {
    for (auto& w : v) w = static_cast<std::uint32_t>(rng.next_u64());
    v[7] &= 0x1FF;  // in-field (233 bits)
  }
  op[2][0] |= 1;  // inversion input must be nonzero
  for (int w = 0; w < 8; ++w) {
    mem.store32(armvm::kRamBase + asmkernels::kXOff + 4 * w, op[0][w]);
    mem.store32(armvm::kRamBase + asmkernels::kYOff + 4 * w, op[1][w]);
  }
  for (unsigned i = 0; i < 256; ++i) {
    mem.store16(armvm::kRamBase + asmkernels::kSqrTabOff + 2 * i,
                gf2::kSquareTable[i]);
  }
  for (unsigned c = 0; c < calls; ++c) {
    for (int w = 0; w < 8; ++w) {
      mem.store32(armvm::kRamBase + asmkernels::kInOff + 4 * w, op[2][w]);
    }
    cpu.call(prog.entry("entry"), {});
  }

  const armvm::RunStats s = cpu.stats();
  std::printf("kernel %s: %u call(s), %llu instructions, %llu cycles, "
              "%.3f uJ, %.3f ms @48 MHz\n\n",
              kernel.c_str(), calls,
              static_cast<unsigned long long>(s.instructions),
              static_cast<unsigned long long>(s.cycles),
              s.energy().energy_uj(), s.energy().time_ms());
  std::printf("%-10s %8s %10s %12s %12s %10s\n", "function", "calls",
              "instrs", "self cyc", "incl cyc", "self pJ");
  for (const auto& f : prof.functions()) {
    std::printf("%-10s %8llu %10llu %12llu %12llu %10.0f\n", f.name.c_str(),
                static_cast<unsigned long long>(f.calls),
                static_cast<unsigned long long>(f.instructions),
                static_cast<unsigned long long>(f.self_cycles),
                static_cast<unsigned long long>(f.inclusive_cycles),
                f.self_energy_pj());
  }
  std::printf("\nhottest RAM words (loads+stores):\n");
  for (const auto& [word, traffic] : heat.hottest(8)) {
    std::printf("  +0x%03zx: %llu\n", word * 4,
                static_cast<unsigned long long>(traffic));
  }

  const profile::NamedProfile tracks[] = {{kernel, &prof}};
  if (profile::write_text_file("ecctool_trace.json",
                               profile::chrome_trace_json(tracks)) &&
      profile::write_text_file("ecctool_flame.txt",
                               profile::collapsed_stack_text(tracks))) {
    std::printf("\nwrote ecctool_trace.json (Perfetto) and "
                "ecctool_flame.txt (flamegraph.pl)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const crypto::Ecdsa ecdsa;
  const crypto::Ecdh ecdh;
  const auto& curve = ecdsa.curve();
  ec::CurveOps ops(curve);

  try {
    if (cmd == "profile") return run_profile(argc, argv);
    if (cmd == "info") {
      std::printf("curve     : %s (Koblitz, F(2^%u), a=0, b=1, h=%u)\n",
                  curve.name.c_str(), curve.f().m(), curve.cofactor);
      std::printf("order     : %s\n", curve.order.to_hex().c_str());
      std::printf("generator : %s\n",
                  bytes_to_hex(ec::encode_point(
                                   curve,
                                   ec::AffinePoint::make(curve.gx, curve.gy),
                                   true))
                      .c_str());
      return 0;
    }
    if (cmd == "keygen") {
      if (argc < 3) return usage();
      const std::string seed_str = argv[2];
      std::vector<std::uint8_t> seed(seed_str.begin(), seed_str.end());
      crypto::HmacDrbg rng(seed);
      const crypto::KeyPair kp = ecdsa.generate(rng);
      std::printf("private: %s\n", kp.d.to_hex().c_str());
      std::printf("public : %s\n",
                  bytes_to_hex(ec::encode_point(curve, kp.q, true)).c_str());
      return 0;
    }
    if (cmd == "sign") {
      if (argc < 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const std::string msg = join_args(argc, argv, 3);
      const crypto::Signature sig = ecdsa.sign(d, msg);
      std::printf("r: %s\n", sig.r.to_hex().c_str());
      std::printf("s: %s\n", sig.s.to_hex().c_str());
      return 0;
    }
    if (cmd == "verify") {
      if (argc < 6) return usage();
      const ec::AffinePoint q =
          ec::decode_point(ops, hex_to_bytes(argv[2]));
      const crypto::Signature sig{mpint::UInt::from_hex(argv[3]),
                                  mpint::UInt::from_hex(argv[4])};
      const std::string msg = join_args(argc, argv, 5);
      const bool ok = ecdsa.verify(q, msg, sig);
      std::printf("%s\n", ok ? "VALID" : "INVALID");
      return ok ? 0 : 1;
    }
    if (cmd == "ecdh") {
      if (argc != 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const ec::AffinePoint peer =
          ec::decode_point(ops, hex_to_bytes(argv[3]));
      if (!ecdh.valid_public_key(peer)) {
        std::fprintf(stderr, "peer public key failed validation\n");
        return 1;
      }
      const auto secret = ecdh.shared_secret(d, peer);
      std::printf("secret: %s\n", crypto::to_hex(secret).c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
