// ecctool — command-line frontend over the whole stack: key generation,
// compressed-point serialization, ECDSA signatures and ECDH agreement on
// sect233k1.
//
//   ecctool keygen  <seed>
//   ecctool sign    <priv-hex> <message...>
//   ecctool verify  <pub-hex> <r-hex> <s-hex> <message...>
//   ecctool ecdh    <priv-hex> <peer-pub-hex>
//   ecctool info [--curve=C]
//   ecctool kernels [--curve=C] [--json[=P]]
//   ecctool profile [kernel] [--curve=C] [--calls=N] [--threads=N]
//                   [--engine=E] [--mem=M] [--json[=P]]
//   ecctool campaign [--curve=C] [--runs=N] [--seed=S] [--threads=N]
//                    [--engine=E] [--json[=P]]
//   ecctool memfault [--curve=C] [--runs=N] [--ber=LIST] [--mem=M]
//                    [--scrub=N] [--seed=S] [--threads=N] [--engine=E]
//                    [--json[=P]]
//   ecctool sca [kernel] [--curve=C] [--iters=N] [--seed=S] [--threads=N]
//               [--engine=E] [--json[=P]]
//   ecctool stats <manifest.json> [--tracks]
//   ecctool serve [--port=P] [--listen-workers=N] [--queue-depth=N]
//                 [--no-coalesce] [--port-file=PATH] [--engine=E] [--mem=M]
//                 [--json[=P]]
//   ecctool client <op> --port=P [--curve=C] [--iters=N] [--params=JSON]
//                  [--raw=BODY]
//
// `serve` runs the async batch service (src/service, wire schema
// eccm0.req.v1 / eccm0.resp.v1 — DESIGN.md §14): kP / ECDH / ECDSA
// workload replays and campaign jobs over a bounded MPMC queue with
// request coalescing, until a `shutdown` request or SIGINT/SIGTERM.
// `client` sends one request to a running serve and prints the response
// document (exit 0 on ok, 1 on a typed error); --raw sends arbitrary
// bytes as the frame body, for protocol testing.
//
// Every simulation subcommand accepts `--progress[=off|plain]` (live
// stderr progress from the campaign loops) and `--json[=PATH]`, which
// mirrors the run into the telemetry run-manifest envelope
// ("eccm0.run.v1": build info, run config, payload, metric snapshots —
// see src/telemetry/manifest.h). `stats` reads such a manifest back and
// pretty-prints it; with --tracks it additionally exports each metric
// histogram's bucket distribution as a Perfetto counter track
// (profile::counter_track_json) next to the manifest.
//
// `profile` runs a K-233 field kernel on the cycle-accurate armvm with
// the symbol-attributed profiler and RAM heatmap attached (one private
// sink pair per execution context, merged after the run), prints the
// per-function cycle/energy breakdown and the hottest RAM words, and
// writes ecctool_trace.json (Perfetto) + ecctool_flame.txt. Its --mem=M
// flag runs the kernel on a protected RAM model (raw|parity|secded) so
// the wait-state overhead shows up in the attribution.
// `campaign` runs the seeded kP fault-injection matrix; its tallies are
// bit-identical for any --threads value.
// `memfault` runs the SRAM bit-error campaign (faultsim/campaign.h):
// Bernoulli bit flips at each --ber=1e-5,1e-4,... rate against each
// memory model (--mem restricts to one; default sweeps all three), with
// SECDED scrubbing every --scrub=N accesses. Contradictory combinations
// (a scrub interval with a model that cannot repair) are rejected.
// `sca` runs both leakage detectors against one kernel: the
// constant-trace verifier (timing + address criteria, with the first
// divergence located by symbol) and the fixed-vs-random TVLA campaign
// on the power rig, then writes the per-cycle |t| trace to
// ecctool_ttrace.json for Perfetto. The multi-command flags share the
// bench::Args conventions (--threads=N, --seed=S, and
// --engine=perstep|predecode|threaded to pick the armvm execution
// engine; traced subcommands observe identical streams on every engine).
#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "armvm/cpu.h"
#include "armvm/dispatch.h"
#include "common/rng.h"
#include "crypto/ecdsa.h"
#include "ec/codec.h"
#include "ecp/curve.h"
#include "faultsim/campaign.h"
#include "manifest.h"
#include "profile/heatmap.h"
#include "profile/profiler.h"
#include "profile/trace_export.h"
#include "report.h"
#include "sca/campaign.h"
#include "sca/ct_check.h"
#include "service/client.h"
#include "service/server.h"
#include "sim/batch.h"
#include "telemetry/metrics.h"
#include "telemetry/progress.h"
#include "workloads/kp_mix.h"
#include "workloads/registry.h"
#include "workloads/spec.h"

using namespace eccm0;

namespace {

std::vector<std::uint8_t> hex_to_bytes(const std::string& h) {
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("bad hex digit");
  };
  if (h.size() % 2) throw std::invalid_argument("odd hex length");
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < h.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(nib(h[i]) << 4 | nib(h[i + 1])));
  }
  return out;
}

std::string bytes_to_hex(std::span<const std::uint8_t> b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  for (auto x : b) {
    s += d[x >> 4];
    s += d[x & 0xF];
  }
  return s;
}

std::string join_args(int argc, char** argv, int from) {
  std::string m;
  for (int i = from; i < argc; ++i) {
    if (i > from) m += " ";
    m += argv[i];
  }
  return m;
}

int usage() {
  std::fprintf(stderr,
               "usage: ecctool keygen <seed>\n"
               "       ecctool sign <priv-hex> <message...>\n"
               "       ecctool verify <pub-hex> <r-hex> <s-hex> <message...>\n"
               "       ecctool ecdh <priv-hex> <peer-pub-hex>\n"
               "       ecctool info [--curve=C]\n"
               "       ecctool kernels [--curve=C]\n"
               "       ecctool profile [kernel] [--curve=C] [--calls=N]"
               " [--threads=N] [--engine=E] [--mem=M]\n"
               "       ecctool campaign [--curve=C] [--runs=N] [--seed=S]"
               " [--threads=N] [--engine=E]\n"
               "       ecctool memfault [--curve=C] [--runs=N]"
               " [--ber=B1,B2,...] [--mem=M] [--scrub=N]\n"
               "                        [--seed=S] [--threads=N] [--engine=E]\n"
               "       ecctool sca [kernel] [--curve=C] [--iters=N] [--seed=S]"
               " [--threads=N] [--engine=E]\n"
               "       ecctool stats <manifest.json> [--tracks]\n"
               "       ecctool serve [--port=P] [--listen-workers=N]"
               " [--queue-depth=N] [--no-coalesce]\n"
               "                     [--port-file=PATH] [--engine=E] [--mem=M]"
               " [--json[=P]]\n"
               "       ecctool client <op> --port=P [--curve=C] [--iters=N]"
               " [--params=JSON] [--raw=BODY]\n"
               "  (E = perstep|predecode|threaded, M = raw|parity|secded,\n"
               "   C = sect233k1|secp192r1|secp224r1|secp256r1;\n"
               "   simulation subcommands also take --json[=PATH] for a run\n"
               "   manifest and --progress[=off|plain] for live progress)\n");
  return 2;
}

/// Validate `--curve=` the same way every bench main does: unknown names
/// list the known set on stderr and exit 2.
bool check_curve(const std::string& name) {
  try {
    (void)workloads::curve_from_name(name);
    return true;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return false;
  }
}

/// Default kernel for a curve: the field multiplication the campaigns
/// splice (gf2 "mul", or the curve's Montgomery multiplication).
std::string default_kernel(const std::string& curve_name) {
  const workloads::CurveRef& c = workloads::curve_from_name(curve_name);
  return c.binary_field ? "mul" : c.kernel_tag + "-mont";
}

/// `ecctool kernels [--curve=C]`: one row per registry entry — curve and
/// field tag, limb count, assembled image size, symbol count. --curve
/// restricts to one curve's kernels.
int run_kernels(int argc, char** argv) {
  bench::Args args;
  args.curve = "";  // default: list every curve
  if (!args.parse(argc - 2, argv + 2, "ecctool_kernels.json") ||
      !args.positionals().empty()) {
    return usage();
  }
  if (!args.curve.empty() && !check_curve(args.curve)) return 2;

  auto& reg = workloads::KernelRegistry::instance();
  bench::Table t({"kernel", "curve", "field", "limbs", "code bytes",
                  "symbols"});
  bench::JsonWriter w;
  if (args.json) {
    bench::manifest_begin(w, "ecctool-kernels", &args);
    w.field("subcommand", "kernels");
    w.begin_array("kernels");
  }
  unsigned listed = 0;
  for (const std::string& name : reg.names()) {
    const workloads::KernelInfo info = reg.info(name);
    if (!args.curve.empty() && info.curve != args.curve) continue;
    const armvm::ProgramRef prog = reg.get(name);
    t.add_row({name, info.curve.empty() ? "-" : info.curve,
               info.binary_field ? "GF(2^m)" : "GF(p)",
               std::to_string(info.limbs), std::to_string(prog->code_bytes()),
               std::to_string(prog->symbols().size())});
    if (args.json) {
      w.begin_object();
      w.field("kernel", name);
      w.field("curve", info.curve);
      w.field("binary_field", info.binary_field);
      w.field("limbs", static_cast<std::uint64_t>(info.limbs));
      w.field("code_bytes", static_cast<std::uint64_t>(prog->code_bytes()));
      w.field("symbols", static_cast<std::uint64_t>(prog->symbols().size()));
      w.end_object();
    }
    ++listed;
  }
  t.print();
  const std::string scope =
      args.curve.empty() ? std::string() : " for " + args.curve;
  std::printf("\n%u kernel(s)%s\n", listed, scope.c_str());
  if (args.json) {
    w.end_array();
    w.field("count", static_cast<std::uint64_t>(listed));
    bench::manifest_end(w);
    if (w.write_file(args.json_path)) {
      std::printf("manifest written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

/// One worker's share of a threaded profile: a private execution
/// context over the shared registry image, with its own Profiler +
/// MemHeatmap fanned in through a TeeSink.
struct ProfilePart {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double time_ms = 0.0;
  std::vector<profile::Profiler::FunctionStats> fns;
  std::vector<std::uint64_t> loads;
  std::vector<std::uint64_t> stores;
};

/// Seed every operand slot a kernel family reads, then re-seed the
/// consumable slots before each call so repeated calls replay one trace.
void load_profile_operands(const std::string& kernel, armvm::Memory& mem) {
  const workloads::KernelInfo info =
      workloads::KernelRegistry::instance().info(kernel);
  if (info.binary_field) {
    const workloads::KernelOperands& od = workloads::KernelOperands::standard();
    workloads::load_mul_inputs(mem, od.x, od.y);
    workloads::load_sqr_table(mem);
    workloads::load_inv_input(mem, od.a);  // also the sqr input slot
    return;
  }
  const workloads::CurveRef& curve = workloads::curve_from_name(info.curve);
  const workloads::PrimeOperands& od = workloads::PrimeOperands::standard(curve);
  workloads::load_prime_modulus(mem, curve);
  workloads::load_prime_mul_inputs(mem, od.x, od.y);
  workloads::load_prime_inv_input(mem, od.a);
  workloads::load_prime_wide_input(mem, od.wide);  // consumed by -redc
}

ProfilePart run_profile_part(const std::string& kernel, unsigned calls,
                             armvm::Cpu::DecodeMode engine,
                             const armvm::MemModelConfig& mem_model) {
  workloads::KernelMachine km(workloads::kernel(kernel), engine, mem_model);
  profile::Profiler prof(km.prog());
  profile::MemHeatmap heat(workloads::kKernelRamSize);
  armvm::TeeSink tee({&prof, &heat});
  km.cpu().set_trace_sink(&tee);

  for (unsigned c = 0; c < calls; ++c) {
    load_profile_operands(kernel, km.mem());
    km.call();
  }

  ProfilePart part;
  const armvm::RunStats s = km.cpu().stats();
  part.instructions = s.instructions;
  part.cycles = s.cycles;
  part.energy_uj = s.energy().energy_uj();
  part.time_ms = s.energy().time_ms();
  part.fns = prof.functions();
  part.loads.resize(heat.words());
  part.stores.resize(heat.words());
  for (std::size_t w = 0; w < heat.words(); ++w) {
    part.loads[w] = heat.loads_at(w);
    part.stores[w] = heat.stores_at(w);
  }
  return part;
}

int run_profile(int argc, char** argv) {
  std::uint64_t calls = 1;
  bench::Args args;
  args.add_u64("--calls", &calls);
  if (!args.parse(argc - 2, argv + 2, "ecctool_profile.json") ||
      args.positionals().size() > 1) {
    return usage();
  }
  if (calls == 0) calls = 1;
  if (!check_curve(args.curve)) return 2;
  const std::string kernel = args.positionals().empty()
                                 ? default_kernel(args.curve)
                                 : args.positionals()[0];
  const armvm::Cpu::DecodeMode engine =
      armvm::decode_mode_from_name(args.engine);
  const armvm::MemModelConfig mem_model =
      armvm::MemModelConfig::for_kind(armvm::mem_model_from_name(args.mem));
  const unsigned threads = args.threads;
  if (!workloads::KernelRegistry::instance().contains(kernel)) {
    return usage();
  }

  // Fan the calls across one context per task; each context has private
  // sinks, merged below, so the aggregate attribution is thread-count
  // independent.
  telemetry::MetricsRegistry metrics;
  sim::BatchExecutor pool(threads);
  pool.set_metrics(&metrics);
  const unsigned workers =
      static_cast<unsigned>(std::min<std::uint64_t>(
          threads == 0 ? calls : std::min<std::uint64_t>(threads, calls),
          calls));
  std::vector<unsigned> share(workers, calls / workers);
  for (unsigned w = 0; w < calls % workers; ++w) ++share[w];
  const std::vector<ProfilePart> parts =
      pool.map<ProfilePart>(workers, [&](std::size_t w) {
        return run_profile_part(kernel, share[w], engine, mem_model);
      });

  ProfilePart all;
  std::map<std::string, profile::Profiler::FunctionStats> merged;
  for (const ProfilePart& p : parts) {
    all.instructions += p.instructions;
    all.cycles += p.cycles;
    all.energy_uj += p.energy_uj;
    all.time_ms += p.time_ms;
    if (all.loads.size() < p.loads.size()) {
      all.loads.resize(p.loads.size());
      all.stores.resize(p.stores.size());
    }
    for (std::size_t w = 0; w < p.loads.size(); ++w) {
      all.loads[w] += p.loads[w];
      all.stores[w] += p.stores[w];
    }
    for (const auto& f : p.fns) {
      auto& m = merged[f.name];
      m.name = f.name;
      m.addr = f.addr;
      m.calls += f.calls;
      m.instructions += f.instructions;
      m.self_cycles += f.self_cycles;
      m.inclusive_cycles += f.inclusive_cycles;
      m.self_hist += f.self_hist;
      m.inclusive_hist += f.inclusive_hist;
    }
  }

  std::printf("kernel %s: %llu call(s), %u context(s), %llu instructions, "
              "%llu cycles, %.3f uJ, %.3f ms @48 MHz\n\n",
              kernel.c_str(), static_cast<unsigned long long>(calls), workers,
              static_cast<unsigned long long>(all.instructions),
              static_cast<unsigned long long>(all.cycles), all.energy_uj,
              all.time_ms);
  std::printf("%-10s %8s %10s %12s %12s %10s\n", "function", "calls",
              "instrs", "self cyc", "incl cyc", "self pJ");
  std::vector<profile::Profiler::FunctionStats> fns;
  for (auto& [name, f] : merged) fns.push_back(f);
  std::sort(fns.begin(), fns.end(), [](const auto& a, const auto& b) {
    return a.self_cycles > b.self_cycles;
  });
  for (const auto& f : fns) {
    std::printf("%-10s %8llu %10llu %12llu %12llu %10.0f\n", f.name.c_str(),
                static_cast<unsigned long long>(f.calls),
                static_cast<unsigned long long>(f.instructions),
                static_cast<unsigned long long>(f.self_cycles),
                static_cast<unsigned long long>(f.inclusive_cycles),
                f.self_energy_pj());
  }
  std::printf("\nhottest RAM words (loads+stores):\n");
  std::vector<std::pair<std::size_t, std::uint64_t>> hot;
  for (std::size_t w = 0; w < all.loads.size(); ++w) {
    if (all.loads[w] + all.stores[w]) {
      hot.emplace_back(w, all.loads[w] + all.stores[w]);
    }
  }
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (hot.size() > 8) hot.resize(8);
  for (const auto& [word, traffic] : hot) {
    std::printf("  +0x%03zx: %llu\n", word * 4,
                static_cast<unsigned long long>(traffic));
  }

  // The timeline export needs one coherent span stream; rerun one
  // context's worth when the run was fanned out.
  workloads::KernelMachine km(workloads::kernel(kernel), engine, mem_model);
  profile::Profiler prof(km.prog());
  km.cpu().set_trace_sink(&prof);
  load_profile_operands(kernel, km.mem());
  km.call();
  const profile::NamedProfile tracks[] = {{kernel, &prof}};
  if (profile::write_text_file("ecctool_trace.json",
                               profile::chrome_trace_json(tracks)) &&
      profile::write_text_file("ecctool_flame.txt",
                               profile::collapsed_stack_text(tracks))) {
    std::printf("\nwrote ecctool_trace.json (Perfetto) and "
                "ecctool_flame.txt (flamegraph.pl)\n");
  }

  if (args.json) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "ecctool-profile", &args);
    w.field("subcommand", "profile");
    w.field("kernel", kernel);
    w.field("calls", calls);
    w.field("contexts", static_cast<std::uint64_t>(workers));
    w.field("instructions", all.instructions);
    w.field("cycles", all.cycles);
    w.field("energy_uj", all.energy_uj);
    w.begin_array("functions");
    for (const auto& f : fns) {
      w.begin_object();
      w.field("name", f.name);
      w.field("calls", f.calls);
      w.field("instructions", f.instructions);
      w.field("self_cycles", f.self_cycles);
      w.field("inclusive_cycles", f.inclusive_cycles);
      w.end_object();
    }
    w.end_array();
    bench::manifest_end(w, &metrics);
    if (w.write_file(args.json_path)) {
      std::printf("manifest written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

int run_campaign(int argc, char** argv) {
  faultsim::CampaignConfig cfg;
  cfg.runs_per_model = 200;
  bench::Args args;
  args.seed = cfg.seed;
  args.threads = cfg.threads;
  args.add_u64("--runs", &cfg.runs_per_model);
  if (!args.parse(argc - 2, argv + 2, "ecctool_campaign.json") ||
      !args.positionals().empty()) {
    return usage();
  }
  if (cfg.runs_per_model == 0) cfg.runs_per_model = 1;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.engine = armvm::decode_mode_from_name(args.engine);
  if (!check_curve(args.curve)) return 2;
  cfg.curve = args.curve;
  telemetry::MetricsRegistry metrics;
  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "campaign",
      cfg.runs_per_model * faultsim::kNumFaultModels);
  cfg.metrics = &metrics;
  cfg.progress = &progress;
  std::printf("kP fault campaign on %s: seed 0x%llx, %llu runs/model, "
              "%u thread(s)\n\n",
              cfg.curve.c_str(), static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(cfg.runs_per_model),
              cfg.threads);
  const faultsim::CampaignResult res = faultsim::run_kp_campaign(cfg);
  const auto& profiles = faultsim::protection_profiles();
  std::printf("silent-corruption rate (%% of runs), fault model x "
              "protection profile:\n");
  std::printf("%-18s", "model");
  for (const auto& p : profiles) std::printf(" %16s", p.name);
  std::printf("\n");
  for (const auto& m : res.models) {
    std::printf("%-18s", faultsim::fault_model_name(m.model));
    for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
      std::printf(" %15.1f%%", 100.0 * m.per_profile[p].silent_rate());
    }
    std::printf("\n");
  }
  std::printf("\nclean-run cost of each profile (proposed-asm prices):\n");
  for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
    std::printf("  %-16s %10llu cycles  %8.2f uJ\n", profiles[p].name,
                static_cast<unsigned long long>(res.costs[p].cycles),
                res.costs[p].energy_uj);
  }

  if (args.json) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "ecctool-campaign", &args);
    w.field("subcommand", "campaign");
    w.field("curve", cfg.curve);
    w.field("runs_per_model", cfg.runs_per_model);
    w.begin_array("models");
    for (const auto& m : res.models) {
      w.begin_object();
      w.field("model", faultsim::fault_model_name(m.model));
      w.field("runs", m.runs);
      w.field("injected", m.injected);
      w.begin_array("profiles");
      for (unsigned p = 0; p < faultsim::kNumProfiles; ++p) {
        const auto& o = m.per_profile[p];
        w.begin_object();
        w.field("profile", profiles[p].name);
        w.field("silent", o.silent);
        w.field("detected", o.detected);
        w.field("silent_rate", o.silent_rate());
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    bench::manifest_end(w, &metrics);
    if (w.write_file(args.json_path)) {
      std::printf("\nmanifest written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

int run_memfault(int argc, char** argv) {
  // Sentinel for "--scrub was not passed": the flag only overwrites it
  // when present, which is how the contradiction check below can tell
  // an explicit interval apart from the default.
  constexpr std::uint64_t kScrubUnset = ~std::uint64_t{0};
  faultsim::MemCampaignConfig cfg;
  cfg.runs_per_cell = 60;
  std::uint64_t scrub = kScrubUnset;
  std::string ber_list;
  bench::Args args;
  args.seed = cfg.seed;
  args.threads = cfg.threads;
  args.mem = "";  // default: sweep all three models
  args.add_u64("--runs", &cfg.runs_per_cell);
  args.add_u64("--scrub", &scrub);
  args.add_str("--ber", &ber_list);
  if (!args.parse(argc - 2, argv + 2, "BENCH_memfault.json") ||
      !args.positionals().empty()) {
    return usage();
  }
  if (cfg.runs_per_cell == 0) cfg.runs_per_cell = 1;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  cfg.engine = armvm::decode_mode_from_name(args.engine);
  if (!check_curve(args.curve)) return 2;
  cfg.curve = args.curve;
  if (!args.mem.empty()) {
    cfg.models = {armvm::mem_model_from_name(args.mem)};
  }
  // Scrubbing repairs words, and only SECDED can repair — an explicit
  // interval combined with a model selection that excludes SECDED is a
  // contradiction, not a sweep.
  const bool has_secded =
      std::find(cfg.models.begin(), cfg.models.end(),
                armvm::MemModelKind::kSecded) != cfg.models.end();
  if (scrub != kScrubUnset && scrub != 0 && !has_secded) {
    std::fprintf(stderr,
                 "error: --scrub=%llu requires the secded model (scrubbing "
                 "repairs words; --mem=%s cannot repair)\n",
                 static_cast<unsigned long long>(scrub), args.mem.c_str());
    return 2;
  }
  cfg.scrub_interval = scrub == kScrubUnset ? 1024 : scrub;
  telemetry::MetricsRegistry metrics;
  cfg.metrics = &metrics;
  if (!ber_list.empty()) {
    cfg.bers.clear();
    const char* s = ber_list.c_str();
    while (*s != '\0') {
      char* end = nullptr;
      const double b = std::strtod(s, &end);
      if (end == s || b <= 0.0 || b > 1.0) {
        std::fprintf(stderr,
                     "error: --ber expects a comma-separated list of rates "
                     "in (0, 1], got '%s'\n",
                     ber_list.c_str());
        return 2;
      }
      cfg.bers.push_back(b);
      s = *end == ',' ? end + 1 : end;
      if (end == s && *end != '\0') {
        std::fprintf(stderr, "error: bad --ber list '%s'\n", ber_list.c_str());
        return 2;
      }
    }
  }

  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "memfault",
      cfg.runs_per_cell * cfg.bers.size() * cfg.models.size());
  cfg.progress = &progress;

  std::printf("SRAM bit-error campaign on %s: seed 0x%llx, %llu runs/cell, "
              "%u thread(s), scrub %llu\n\n",
              cfg.curve.c_str(), static_cast<unsigned long long>(cfg.seed),
              static_cast<unsigned long long>(cfg.runs_per_cell), cfg.threads,
              static_cast<unsigned long long>(cfg.scrub_interval));
  const faultsim::MemCampaignResult res = faultsim::run_mem_campaign(cfg);
  const auto& profiles = faultsim::protection_profiles();

  auto fmt_ber = [](double b) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0e", b);
    return std::string(buf);
  };
  for (unsigned p : {0u, faultsim::kNumProfiles - 1}) {
    std::printf("silent corruption, software profile '%s':\n",
                profiles[p].name);
    std::printf("%-8s", "model");
    for (double b : cfg.bers) std::printf(" %10s", fmt_ber(b).c_str());
    std::printf("\n");
    for (const auto& rep : res.models) {
      std::printf("%-8s", armvm::mem_model_name(rep.config.kind));
      for (const auto& cell : rep.cells) {
        std::printf(" %9.1f%%", 100.0 * cell.per_profile[p].silent_rate());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("hardware outcome counts (summed over the BER sweep):\n");
  for (const auto& rep : res.models) {
    std::uint64_t detected = 0, hw_fix = 0, scrub_fix = 0;
    for (const auto& cell : rep.cells) {
      detected += cell.per_profile[0].detected;
      hw_fix += cell.hw_corrections;
      scrub_fix += cell.scrub_corrections;
    }
    std::printf("  %-8s %6llu detected  %6llu load-time fixes  "
                "%6llu scrub fixes\n",
                armvm::mem_model_name(rep.config.kind),
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(hw_fix),
                static_cast<unsigned long long>(scrub_fix));
  }

  std::printf("\nclean-run codeword overhead (one VM mul kernel call):\n");
  const std::uint64_t base_cycles = res.models.front().clean_cycles;
  for (const auto& rep : res.models) {
    std::printf("  %-8s %2u wait-state(s)  %8llu cycles (%+.2f%%)  %8.0f pJ\n",
                armvm::mem_model_name(rep.config.kind), rep.config.wait_states,
                static_cast<unsigned long long>(rep.clean_cycles),
                100.0 * (static_cast<double>(rep.clean_cycles) /
                             static_cast<double>(base_cycles) -
                         1.0),
                rep.clean_energy_pj);
  }

  if (!args.json_path.empty()) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "ecctool-memfault", &args);
    w.field("bench", "memfault");
    w.field("curve", cfg.curve);
    w.field("seed", cfg.seed);
    w.field("runs_per_cell", cfg.runs_per_cell);
    w.begin_array("models");
    for (const auto& rep : res.models) {
      w.begin_object();
      w.field("model", armvm::mem_model_name(rep.config.kind));
      w.field("clean_cycles", rep.clean_cycles);
      w.begin_array("cells");
      for (const auto& cell : rep.cells) {
        w.begin_object();
        w.field("ber", cell.ber);
        w.field("silent_unprotected", cell.per_profile[0].silent);
        w.field("silent_protected",
                cell.per_profile[faultsim::kNumProfiles - 1].silent);
        w.field("detected", cell.per_profile[0].detected);
        w.field("hw_corrections", cell.hw_corrections);
        w.field("scrub_corrections", cell.scrub_corrections);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    bench::manifest_end(w, &metrics);
    if (w.write_file(args.json_path)) {
      std::printf("\nJSON written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

int run_sca(int argc, char** argv) {
  bench::Args args;
  args.seed = 0x5CA;
  args.iters = 40;  // TVLA traces per class
  if (!args.parse(argc - 2, argv + 2, "ecctool_sca.json") ||
      args.positionals().size() > 1) {
    return usage();
  }
  if (!check_curve(args.curve)) return 2;
  const std::string kernel = args.positionals().empty()
                                 ? default_kernel(args.curve)
                                 : args.positionals()[0];
  if (!workloads::KernelRegistry::instance().contains(kernel)) {
    return usage();
  }

  const armvm::Cpu::DecodeMode engine =
      armvm::decode_mode_from_name(args.engine);
  telemetry::MetricsRegistry metrics;
  telemetry::ProgressMeter progress(
      telemetry::progress_mode_from_name(args.progress), "tvla traces",
      2 * args.iters);
  sca::CtConfig ct_cfg;
  ct_cfg.kernel = kernel;
  ct_cfg.seed = args.seed;
  ct_cfg.engine = engine;
  ct_cfg.metrics = &metrics;
  const sca::CtReport ct = sca::check_kernel_constant_trace(ct_cfg);
  std::printf("constant-trace (%u random draws):\n", ct.runs);
  std::printf("  timing    (pc/class/cycles): %s\n",
              ct.constant ? "CONSTANT" : "VARIABLE");
  std::printf("  addresses (+ memory stream): %s\n",
              ct.constant_addresses ? "CONSTANT" : "VARIABLE");
  if (ct.min_cycles == ct.max_cycles) {
    std::printf("  %llu instructions, %llu cycles, digest %016llx\n",
                static_cast<unsigned long long>(ct.trace_len),
                static_cast<unsigned long long>(ct.ref_cycles),
                static_cast<unsigned long long>(ct.digest));
  } else {
    std::printf("  cycles vary %llu..%llu\n",
                static_cast<unsigned long long>(ct.min_cycles),
                static_cast<unsigned long long>(ct.max_cycles));
  }
  if (ct.first.diverged) {
    std::printf("  first divergence: #%llu at %s (%s)\n",
                static_cast<unsigned long long>(ct.first.index),
                ct.first.symbol_a.c_str(), ct.first.reason.c_str());
  }

  sca::TvlaCampaignConfig tv_cfg;
  tv_cfg.kernel = kernel;
  tv_cfg.traces_per_class = static_cast<unsigned>(args.iters);
  tv_cfg.seed = args.seed;
  tv_cfg.threads = args.threads;
  tv_cfg.engine = engine;
  tv_cfg.metrics = &metrics;
  tv_cfg.progress = &progress;
  const sca::TvlaCampaignResult res = sca::run_tvla_campaign(tv_cfg);
  const sca::TvlaSummary& s = res.summary;
  std::printf("\nTVLA fixed-vs-random (%llu traces, |t| > %.1f):\n",
              static_cast<unsigned long long>(res.traces), s.threshold);
  std::printf("  max|t| %.2f at cycle %zu over %zu cycles\n", s.max_abs_t,
              s.max_cycle, s.compared_cycles);
  std::printf("  %zu raw excursion(s), %zu confirmed by the duplicated "
              "test, length leak: %s\n",
              s.cycles_over_raw, s.cycles_over, s.length_leak ? "yes" : "no");
  std::printf("  verdict: %s   (t-digest %016llx)\n",
              s.leaky ? "LEAKY" : "CLEAN",
              static_cast<unsigned long long>(res.t_digest));

  if (profile::write_text_file(
          "ecctool_ttrace.json",
          profile::counter_track_json("tvla |t| " + kernel, res.t_trace))) {
    std::printf("\nwrote ecctool_ttrace.json (Perfetto counter track)\n");
  }

  if (args.json) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "ecctool-sca", &args);
    w.field("subcommand", "sca");
    w.field("kernel", kernel);
    w.begin_object("constant_trace");
    w.field("timing_constant", ct.constant);
    w.field("addr_constant", ct.constant_addresses);
    w.field("instructions", ct.trace_len);
    w.field("min_cycles", ct.min_cycles);
    w.field("max_cycles", ct.max_cycles);
    w.end_object();
    w.begin_object("tvla");
    w.field("traces", res.traces);
    w.field("compared_cycles", static_cast<std::uint64_t>(s.compared_cycles));
    w.field("max_abs_t", s.max_abs_t);
    w.field("cycles_over", static_cast<std::uint64_t>(s.cycles_over));
    w.field("length_leak", s.length_leak);
    w.field("leaky", s.leaky);
    w.end_object();
    bench::manifest_end(w, &metrics);
    if (w.write_file(args.json_path)) {
      std::printf("manifest written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

/// `ecctool stats <manifest.json> [--tracks]`: pretty-print a saved run
/// manifest — build/run config, counters, gauges, histogram quantiles —
/// and with --tracks export every histogram's bucket distribution as a
/// Perfetto counter track (one file per histogram, sample i = count in
/// the i-th occupied bucket).
int run_stats(int argc, char** argv) {
  bool tracks = false;
  bench::Args args;
  args.add_flag("--tracks", &tracks);
  if (!args.parse(argc - 2, argv + 2, "") ||
      args.positionals().size() != 1) {
    return usage();
  }
  const std::string& path = args.positionals()[0];
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  const telemetry::Json doc = telemetry::Json::parse(text);
  if (!telemetry::is_manifest(doc)) {
    std::fprintf(stderr,
                 "error: %s is not an %s run manifest (regenerate it with "
                 "--json on a current build)\n",
                 path.c_str(), telemetry::kManifestSchema);
    return 1;
  }

  std::printf("tool    : %s\n", doc.get("tool")->as_string().c_str());
  const telemetry::Json* build = doc.get("build");
  for (const auto& [key, v] : build->members()) {
    std::printf("%-8s: %s\n", key.c_str(),
                v.kind() == telemetry::Json::Kind::kString
                    ? v.as_string().c_str()
                    : v.token().c_str());
  }
  const telemetry::Json* run = doc.get("run");
  if (run->size() != 0) {
    std::printf("run     :");
    for (const auto& [key, v] : run->members()) {
      std::printf(" %s=%s", key.c_str(),
                  v.kind() == telemetry::Json::Kind::kString
                      ? v.as_string().c_str()
                      : v.token().c_str());
    }
    std::printf("\n");
  }

  const telemetry::Json* metrics = doc.get("metrics");
  const telemetry::Json* counters = metrics->get("counters");
  if (counters != nullptr && counters->size() != 0) {
    std::printf("\ncounters:\n");
    for (const auto& [name, v] : counters->members()) {
      std::printf("  %-44s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(v.as_u64()));
    }
  }
  const telemetry::Json* gauges = metrics->get("gauges");
  if (gauges != nullptr && gauges->size() != 0) {
    std::printf("\ngauges:\n");
    for (const auto& [name, v] : gauges->members()) {
      std::printf("  %-44s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(v.as_u64()));
    }
  }
  const telemetry::Json* hists = metrics->get("histograms");
  if (hists != nullptr && hists->size() != 0) {
    std::printf("\nhistograms:\n");
    for (const auto& [name, h] : hists->members()) {
      auto u64 = [&h](const char* key) {
        const telemetry::Json* v = h.get(key);
        return v == nullptr ? std::uint64_t{0} : v->as_u64();
      };
      const telemetry::Json* unit = h.get("unit");
      std::printf("  %-44s n=%llu min=%llu p50=%llu p90=%llu p99=%llu "
                  "max=%llu %s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(u64("count")),
                  static_cast<unsigned long long>(u64("min")),
                  static_cast<unsigned long long>(u64("p50")),
                  static_cast<unsigned long long>(u64("p90")),
                  static_cast<unsigned long long>(u64("p99")),
                  static_cast<unsigned long long>(u64("max")),
                  unit == nullptr ? "" : unit->as_string().c_str());
      if (!tracks) continue;
      const telemetry::Json* buckets = h.get("buckets");
      if (buckets == nullptr || buckets->size() == 0) continue;
      std::vector<double> counts;
      for (const telemetry::Json& pair : buckets->items()) {
        counts.push_back(pair.items()[1].as_f64());
      }
      std::string fname = "ecctool_stats_" + name + ".json";
      for (char& c : fname) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.') c = '_';
      }
      if (profile::write_text_file(
              fname, profile::counter_track_json(name, counts))) {
        std::printf("    -> %s (Perfetto counter track, one sample per "
                    "occupied bucket)\n",
                    fname.c_str());
      }
    }
  }
  return 0;
}

// ---- serve / client --------------------------------------------------

volatile std::sig_atomic_t g_stop_signal = 0;
void on_stop_signal(int) { g_stop_signal = 1; }

/// `ecctool serve`: the long-running crypto/campaign service
/// (service/server.h, wire schema in DESIGN.md §14). Runs until a
/// `shutdown` request or SIGINT/SIGTERM, then drains and (with --json)
/// writes a run manifest of the serve counters.
int run_serve(int argc, char** argv) {
  std::uint64_t port = 0;
  std::uint64_t listen_workers = 0;  // 0 = hardware concurrency
  std::uint64_t queue_depth = 64;
  bool no_coalesce = false;
  std::string port_file;
  bench::Args args;
  args.add_u64("--port", &port);
  args.add_u64("--listen-workers", &listen_workers);
  args.add_u64("--queue-depth", &queue_depth);
  args.add_flag("--no-coalesce", &no_coalesce);
  args.add_str("--port-file", &port_file);
  if (!args.parse(argc - 2, argv + 2, "ecctool_serve.json") ||
      !args.positionals().empty()) {
    return usage();
  }
  if (port > 65535) {
    std::fprintf(stderr, "error: --port=%llu is not a TCP port\n",
                 static_cast<unsigned long long>(port));
    return 2;
  }
  if (queue_depth == 0) {
    std::fprintf(stderr,
                 "error: --queue-depth=0 would admit no work; use a "
                 "positive depth\n");
    return 2;
  }

  service::ServerConfig cfg;
  try {
    cfg.engine = armvm::decode_mode_from_name(args.engine);
    cfg.mem_model =
        armvm::MemModelConfig::for_kind(armvm::mem_model_from_name(args.mem));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  cfg.port = static_cast<std::uint16_t>(port);
  cfg.workers = static_cast<unsigned>(listen_workers);
  cfg.queue_depth = static_cast<std::size_t>(queue_depth);
  cfg.coalesce = !no_coalesce;

  service::Server server(cfg);
  server.start();
  std::printf("serving on 127.0.0.1:%u (%u workers, queue depth %llu%s)\n",
              server.port(), server.config().workers == 0
                                 ? 0u
                                 : server.config().workers,
              static_cast<unsigned long long>(queue_depth),
              cfg.coalesce ? ", coalescing" : "");
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }

  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  while (g_stop_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  telemetry::MetricsRegistry& m = server.metrics();
  std::printf("served %llu request(s), %llu busy rejection(s), "
              "%llu coalesced\n",
              static_cast<unsigned long long>(
                  m.counter_value("serve.requests")),
              static_cast<unsigned long long>(m.counter_value("serve.busy")),
              static_cast<unsigned long long>(
                  m.counter_value("serve.coalesced")));
  if (args.json) {
    bench::JsonWriter w;
    bench::manifest_begin(w, "ecctool-serve", &args);
    w.field("subcommand", "serve");
    w.field("queue_depth", queue_depth);
    w.field("coalesce", cfg.coalesce);
    w.field("requests", m.counter_value("serve.requests"));
    w.field("busy", m.counter_value("serve.busy"));
    w.field("coalesced", m.counter_value("serve.coalesced"));
    w.field("errors", m.counter_value("serve.errors"));
    bench::manifest_end(w, &m);
    if (w.write_file(args.json_path)) {
      std::printf("manifest written to %s\n", args.json_path.c_str());
    }
  }
  return 0;
}

/// `ecctool client`: one-shot request against a running serve instance —
/// connect, send one eccm0.req.v1 frame, print the response document.
/// Exit 0 on an ok response, 1 on a typed error response or transport
/// failure, 2 on bad usage.
int run_client(int argc, char** argv) {
  std::uint64_t port = 0;
  std::string raw;
  std::string params_text;
  bench::Args args;
  args.add_u64("--port", &port);
  args.add_str("--raw", &raw);
  args.add_str("--params", &params_text);
  if (!args.parse(argc - 2, argv + 2, "")) return usage();
  if (port == 0 || port > 65535) {
    std::fprintf(stderr,
                 "error: client needs --port=P of a running serve\n");
    return 2;
  }
  if (raw.empty() && args.positionals().size() != 1) {
    std::fprintf(stderr, "error: client takes exactly one op (or --raw)\n");
    return 2;
  }

  telemetry::Json params = telemetry::Json::object();
  if (!params_text.empty()) {
    try {
      params = telemetry::Json::parse(params_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad --params JSON: %s\n", e.what());
      return 2;
    }
  } else {
    params.set("curve", telemetry::Json::str(args.curve));
    if (args.iters != 0) {
      params.set("reps", telemetry::Json::number(args.iters));
    }
  }

  try {
    service::Client client;
    client.connect_to(static_cast<std::uint16_t>(port));
    const telemetry::Json resp =
        raw.empty() ? client.call(args.positionals()[0], std::move(params))
                    : client.call_raw(raw);
    std::printf("%s\n", resp.dump().c_str());
    const telemetry::Json* ok = resp.get("ok");
    return ok != nullptr && ok->as_bool() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // The protocol commands run the sect233k1 host crypto stack. They
  // accept the shared --curve= flag for symmetry, but the prime curves'
  // ECDH/ECDSA transactions run as VM workloads (workloads::make_workload),
  // not as host crypto — so anything else is rejected up front.
  std::vector<char*> filtered;
  if (cmd == "keygen" || cmd == "sign" || cmd == "verify" || cmd == "ecdh") {
    std::string curve_flag = "sect233k1";
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--curve=", 8) == 0) {
        curve_flag = argv[i] + 8;
      } else {
        filtered.push_back(argv[i]);
      }
    }
    if (!check_curve(curve_flag)) return 2;
    if (curve_flag != "sect233k1") {
      std::fprintf(stderr,
                   "error: host protocol crypto runs on sect233k1; run "
                   "%s-curve transactions through the workload layer "
                   "(bench_prime_vs_binary, ecctool profile/campaign/sca "
                   "--curve=%s)\n",
                   curve_flag.c_str(), curve_flag.c_str());
      return 2;
    }
    argc = static_cast<int>(filtered.size());
    argv = filtered.data();
  }
  const crypto::Ecdsa ecdsa;
  const crypto::Ecdh ecdh;
  const auto& curve = ecdsa.curve();
  ec::CurveOps ops(curve);

  try {
    if (cmd == "profile") return run_profile(argc, argv);
    if (cmd == "campaign") return run_campaign(argc, argv);
    if (cmd == "memfault") return run_memfault(argc, argv);
    if (cmd == "sca") return run_sca(argc, argv);
    if (cmd == "kernels") return run_kernels(argc, argv);
    if (cmd == "stats") return run_stats(argc, argv);
    if (cmd == "serve") return run_serve(argc, argv);
    if (cmd == "client") return run_client(argc, argv);
    if (cmd == "info") {
      bench::Args args;
      if (!args.parse(argc - 2, argv + 2, "") || !args.positionals().empty()) {
        return usage();
      }
      if (!check_curve(args.curve)) return 2;
      const workloads::CurveRef& ref = workloads::curve_from_name(args.curve);
      if (!ref.binary_field) {
        const ecp::PrimeCurve& pc = workloads::prime_curve(ref);
        std::printf("curve     : %s (short Weierstrass, F(p), %u bits, "
                    "%u limbs)\n",
                    ref.name.c_str(), ref.bits, ref.limbs);
        std::printf("p         : %s\n", pc.p.to_hex().c_str());
        std::printf("order     : %s\n", pc.order.to_hex().c_str());
        std::printf("generator : (%s,\n             %s)\n",
                    pc.gx.to_hex().c_str(), pc.gy.to_hex().c_str());
        std::printf("kernels   : %s-mul/-mont/-sqr/-redc/-inv\n",
                    ref.kernel_tag.c_str());
        return 0;
      }
      std::printf("curve     : %s (Koblitz, F(2^%u), a=0, b=1, h=%u)\n",
                  curve.name.c_str(), curve.f().m(), curve.cofactor);
      std::printf("order     : %s\n", curve.order.to_hex().c_str());
      std::printf("generator : %s\n",
                  bytes_to_hex(ec::encode_point(
                                   curve,
                                   ec::AffinePoint::make(curve.gx, curve.gy),
                                   true))
                      .c_str());
      return 0;
    }
    if (cmd == "keygen") {
      if (argc < 3) return usage();
      const std::string seed_str = argv[2];
      std::vector<std::uint8_t> seed(seed_str.begin(), seed_str.end());
      crypto::HmacDrbg rng(seed);
      const crypto::KeyPair kp = ecdsa.generate(rng);
      std::printf("private: %s\n", kp.d.to_hex().c_str());
      std::printf("public : %s\n",
                  bytes_to_hex(ec::encode_point(curve, kp.q, true)).c_str());
      return 0;
    }
    if (cmd == "sign") {
      if (argc < 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const std::string msg = join_args(argc, argv, 3);
      const crypto::Signature sig = ecdsa.sign(d, msg);
      std::printf("r: %s\n", sig.r.to_hex().c_str());
      std::printf("s: %s\n", sig.s.to_hex().c_str());
      return 0;
    }
    if (cmd == "verify") {
      if (argc < 6) return usage();
      const ec::AffinePoint q =
          ec::decode_point(ops, hex_to_bytes(argv[2]));
      const crypto::Signature sig{mpint::UInt::from_hex(argv[3]),
                                  mpint::UInt::from_hex(argv[4])};
      const std::string msg = join_args(argc, argv, 5);
      const bool ok = ecdsa.verify(q, msg, sig);
      std::printf("%s\n", ok ? "VALID" : "INVALID");
      return ok ? 0 : 1;
    }
    if (cmd == "ecdh") {
      if (argc != 4) return usage();
      const mpint::UInt d = mpint::UInt::from_hex(argv[2]);
      const ec::AffinePoint peer =
          ec::decode_point(ops, hex_to_bytes(argv[3]));
      if (!ecdh.valid_public_key(peer)) {
        std::fprintf(stderr, "peer public key failed validation\n");
        return 1;
      }
      const auto secret = ecdh.shared_secret(d, peer);
      std::printf("secret: %s\n", crypto::to_hex(secret).c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
