// Quickstart: the public API in ~60 lines.
//
//   1. field arithmetic in F(2^233),
//   2. point arithmetic and wTNAF scalar multiplication on sect233k1,
//   3. an ECDH key agreement (the paper's target workload).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "crypto/ecdh.h"
#include "ec/scalarmul.h"
#include "gf2/field.h"

using namespace eccm0;

int main() {
  // --- 1. Field arithmetic -------------------------------------------
  const gf2::GF2Field& f = gf2::GF2Field::f233();
  Rng rng(2014);
  const gf2::Elem a = f.random(rng);
  const gf2::Elem b = f.random(rng);
  const gf2::Elem prod = f.mul(a, b);  // Lopez-Dahab w=4 + trinomial fold
  std::printf("a*b      = %s...\n", f.to_hex(prod).substr(0, 24).c_str());
  std::printf("a*inv(a) = %s\n", f.to_hex(f.mul(a, f.inv(a))).c_str());

  // --- 2. Curve arithmetic -------------------------------------------
  const ec::BinaryCurve& curve = ec::BinaryCurve::sect233k1();
  ec::CurveOps ops(curve);
  const ec::AffinePoint g = ec::AffinePoint::make(curve.gx, curve.gy);
  const mpint::UInt k = mpint::UInt::random_below(rng, curve.order);
  // Random-point multiplication, the paper's kP configuration (w = 4).
  const ec::AffinePoint kg = ec::mul_wtnaf(ops, g, k, 4);
  std::printf("k*G.x    = %s...\n",
              f.to_hex(kg.x).substr(0, 24).c_str());
  std::printf("on curve = %s\n", ops.on_curve(kg) ? "yes" : "no");
  std::printf("field ops: %llu mul, %llu sqr, %llu inv\n",
              static_cast<unsigned long long>(ops.counts().mul),
              static_cast<unsigned long long>(ops.counts().sqr),
              static_cast<unsigned long long>(ops.counts().inv));

  // --- 3. ECDH --------------------------------------------------------
  const crypto::Ecdh ecdh;
  std::vector<std::uint8_t> seed_a{1, 1, 2, 3, 5, 8};
  std::vector<std::uint8_t> seed_b{2, 7, 1, 8, 2, 8};
  crypto::HmacDrbg rng_a(seed_a), rng_b(seed_b);
  const crypto::KeyPair alice = ecdh.generate(rng_a);  // kG path, w = 6
  const crypto::KeyPair bob = ecdh.generate(rng_b);
  const auto secret_a = ecdh.shared_secret(alice.d, bob.q);  // kP, w = 4
  const auto secret_b = ecdh.shared_secret(bob.d, alice.q);
  std::printf("ECDH secret (alice) = %s\n",
              crypto::to_hex(secret_a).substr(0, 32).c_str());
  std::printf("ECDH secret (bob)   = %s\n",
              crypto::to_hex(secret_b).substr(0, 32).c_str());
  std::printf("match: %s\n", secret_a == secret_b ? "yes" : "NO");
  return secret_a == secret_b ? 0 : 1;
}
