// ECDSA on sect233k1: sign a sensor reading, verify it, and demonstrate
// that tampering is caught — the authentication half of a WSN security
// stack.
#include <cstdio>

#include "crypto/ecdsa.h"

using namespace eccm0;

int main() {
  const crypto::Ecdsa ecdsa;  // sect233k1, deterministic nonces

  std::vector<std::uint8_t> seed{0xDE, 0xAD, 0xBE, 0xEF};
  crypto::HmacDrbg rng(seed);
  const crypto::KeyPair node = ecdsa.generate(rng);
  std::printf("node public key x = %s...\n",
              ecdsa.curve().f().to_hex(node.q.x).substr(0, 24).c_str());

  const std::string reading = "node=17 t=2026-07-05T12:00Z temp=21.4C";
  const crypto::Signature sig = ecdsa.sign(node.d, reading);
  std::printf("reading  : %s\n", reading.c_str());
  std::printf("sig.r    = %s...\n", sig.r.to_hex().substr(0, 24).c_str());
  std::printf("sig.s    = %s...\n", sig.s.to_hex().substr(0, 24).c_str());

  const bool ok = ecdsa.verify(node.q, reading, sig);
  std::printf("verify   : %s\n", ok ? "ACCEPT" : "reject");

  const std::string tampered = "node=17 t=2026-07-05T12:00Z temp=99.9C";
  const bool tampered_ok = ecdsa.verify(node.q, tampered, sig);
  std::printf("tampered : %s\n", tampered_ok ? "ACCEPT (BUG!)" : "reject");

  // Determinism: re-signing the same message gives the same signature —
  // no on-node entropy source needed (RFC 6979 rationale).
  const crypto::Signature sig2 = ecdsa.sign(node.d, reading);
  std::printf("deterministic: %s\n",
              (sig.r == sig2.r && sig.s == sig2.s) ? "yes" : "no");
  return ok && !tampered_ok ? 0 : 1;
}
